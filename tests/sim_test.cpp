/**
 * @file
 * Tests for the discrete-event cluster simulator: event-queue
 * determinism, parity of the lowered GPipe / 1F1B / interleaved
 * schedules against the closed-form pipeline algebra (including the
 * golden regression pins), the perturbation model (zero jitter is
 * exact, more jitter is never faster, stragglers stretch the
 * timeline), the zero-bubble schedule's bubble advantage, and
 * shared-fabric contention.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dist/collective.hpp"
#include "dist/parallel.hpp"
#include "eval/oracle.hpp"
#include "graph/models.hpp"
#include "sim/cluster.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace neusight::sim {
namespace {

using dist::HybridConfig;
using dist::PipelineConfig;
using dist::PipelineSchedule;
using dist::ServerConfig;
using dist::SimCollectives;
using graph::ModelConfig;

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue q;
    q.push(3.0, EventKind::TaskFinish, 0);
    q.push(1.0, EventKind::TaskFinish, 1);
    q.push(2.0, EventKind::TaskFinish, 2);
    EXPECT_EQ(q.pop().task, 1);
    EXPECT_EQ(q.pop().task, 2);
    EXPECT_DOUBLE_EQ(q.nowMs(), 2.0);
    EXPECT_EQ(q.pop().task, 0);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.popped(), 3u);
}

TEST(EventQueue, TiesBreakByPushOrder)
{
    // Simultaneous events pop in push order — the determinism anchor:
    // no dependence on heap internals or pointer values.
    EventQueue q;
    for (int i = 0; i < 64; ++i)
        q.push(5.0, EventKind::TaskFinish, i);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(q.pop().task, i);
}

TEST(Cluster, GreedyPicksLowestPriorityAndChainsReplay)
{
    // One GPU, two independent tasks: the lower priority key runs
    // first; chainProgram then freezes that order.
    ScheduleProgram p;
    p.numGpus = 1;
    SimTask a;
    a.gpu = 0;
    a.durationMs = 2.0;
    a.priority = 7;
    SimTask b = a;
    b.priority = 3;
    p.addTask(a);
    p.addTask(b);
    const RunResult run = runProgram(p, {2.0, 2.0});
    ASSERT_EQ(run.gpuOrder[0].size(), 2u);
    EXPECT_EQ(run.gpuOrder[0][0], 1); // b first: lower key
    EXPECT_DOUBLE_EQ(run.makespanMs, 4.0);

    const ScheduleProgram chained = chainProgram(p, run);
    // Stretch the winner: the replay keeps b -> a and stretches the
    // makespan monotonically.
    const RunResult replay = runProgram(chained, {2.0, 5.0});
    EXPECT_EQ(replay.gpuOrder[0][0], 1);
    EXPECT_DOUBLE_EQ(replay.makespanMs, 7.0);
}

TEST(Cluster, SharedChannelProcessorSharing)
{
    // Two equal transfers joining an empty shared link together take
    // twice their solo duration (each gets half the bandwidth).
    ScheduleProgram p;
    p.numGpus = 0;
    const int c = p.addChannel(/*shared=*/true);
    for (int i = 0; i < 2; ++i) {
        SimTask t;
        t.kind = TaskKind::AllReduce;
        t.channel = c;
        t.durationMs = 3.0;
        t.priority = static_cast<uint64_t>(i);
        p.addTask(t);
    }
    const RunResult run = runProgram(p, {3.0, 3.0});
    EXPECT_NEAR(run.makespanMs, 6.0, 1e-9);
    // An exclusive channel serializes instead: same total here, but a
    // staggered join differs. Solo on shared = solo duration.
    ScheduleProgram solo;
    solo.numGpus = 0;
    const int cs = solo.addChannel(/*shared=*/true);
    SimTask t;
    t.kind = TaskKind::AllReduce;
    t.channel = cs;
    t.durationMs = 3.0;
    solo.addTask(t);
    EXPECT_NEAR(runProgram(solo, {3.0}).makespanMs, 3.0, 1e-9);
}

/** Golden fixture: GPT2-Large on 8x A100-40GB (the dist_test pin). */
struct GoldenFixture
{
    eval::SimulatorOracle oracle;
    SimCollectives comms{"A100-NVLink"};
    ServerConfig server;
    const ModelConfig &model = graph::findModel("GPT2-Large");

    GoldenFixture()
    {
        server.systemName = "A100-NVLink";
        server.gpuName = "A100-40GB";
        server.numGpus = 8;
    }
};

double
relErr(double a, double b)
{
    return std::fabs(a - b) / std::max(std::fabs(b), 1e-12);
}

TEST(SimParity, GoldenPinTp2Pp2Dp2)
{
    // The simulator must land on the closed form's golden pins: GPT2-
    // Large, global batch 16, tp2 x pp2 x dp2, 4 micro-batches, 1F1B.
    GoldenFixture fx;
    HybridConfig hy;
    hy.tpDegree = 2;
    hy.ppDegree = 2;
    hy.dpDegree = 2;
    hy.numMicroBatches = 4;
    hy.schedule = PipelineSchedule::OneFOneB;
    const SimResult plain = simulateHybrid(fx.oracle, fx.comms, fx.server,
                                           fx.model, 16, hy);
    hy.recomputeActivations = true;
    const SimResult rec = simulateHybrid(fx.oracle, fx.comms, fx.server,
                                         fx.model, 16, hy);
    ASSERT_FALSE(plain.hybrid.oom);
    ASSERT_FALSE(rec.hybrid.oom);
    EXPECT_LT(relErr(plain.hybrid.latencyMs, 1474.292), 1e-3);
    EXPECT_LT(relErr(rec.hybrid.latencyMs, 1958.671), 1e-3);
}

TEST(SimParity, SchedulesMatchClosedFormWithinTolerance)
{
    // Every closed-form-priceable schedule, against hybridTrainingMs on
    // the same configuration: 0.1% relative. The non-latency accounting
    // (bytes, memory, recompute) must agree exactly — it is the same
    // arithmetic.
    GoldenFixture fx;
    const struct
    {
        PipelineSchedule schedule;
        int tp, pp, dp, m;
        bool recompute;
    } cases[] = {
        {PipelineSchedule::GPipe, 2, 2, 2, 4, false},
        {PipelineSchedule::OneFOneB, 2, 2, 2, 4, false},
        {PipelineSchedule::OneFOneB, 2, 2, 2, 4, true},
        {PipelineSchedule::OneFOneB, 1, 4, 2, 8, false},
        {PipelineSchedule::Interleaved1F1B, 2, 2, 2, 4, false},
        {PipelineSchedule::OneFOneB, 2, 1, 4, 1, false}, // no pipeline
        {PipelineSchedule::OneFOneB, 1, 1, 8, 1, false}, // pure DP
        {PipelineSchedule::OneFOneB, 4, 1, 2, 1, false}, // TP-heavy
    };
    for (const auto &c : cases) {
        HybridConfig hy;
        hy.tpDegree = c.tp;
        hy.ppDegree = c.pp;
        hy.dpDegree = c.dp;
        hy.numMicroBatches = c.m;
        hy.schedule = c.schedule;
        hy.recomputeActivations = c.recompute;
        SCOPED_TRACE(testing::Message()
                     << "tp" << c.tp << " pp" << c.pp << " dp" << c.dp
                     << " m" << c.m << " sch" << static_cast<int>(c.schedule)
                     << " rec" << c.recompute);
        const auto closed = hybridTrainingMs(fx.oracle, fx.comms,
                                             fx.server, fx.model, 16, hy);
        const SimResult sim = simulateHybrid(fx.oracle, fx.comms,
                                             fx.server, fx.model, 16, hy);
        ASSERT_FALSE(closed.oom);
        ASSERT_FALSE(sim.hybrid.oom);
        EXPECT_LT(relErr(sim.hybrid.latencyMs, closed.latencyMs), 1e-3);
        EXPECT_DOUBLE_EQ(sim.hybrid.commBytes, closed.commBytes);
        EXPECT_DOUBLE_EQ(sim.hybrid.memoryBytes, closed.memoryBytes);
        EXPECT_DOUBLE_EQ(sim.hybrid.recomputeMs, closed.recomputeMs);
    }
}

TEST(SimParity, DeepInterleavedBoundsTheClosedForm)
{
    // On deep interleaved pipelines the closed-form bubble
    // (sum - max) / v is a lower bound no greedy 1F1B executor fully
    // reaches: the last micro-batch's backward must traverse the other
    // GPUs' high chunks before the bottleneck GPU's final low-chunk
    // backward, and by then the GPU holds less deferred work than that
    // window — exposed drain the algebra does not see. Pin the sim
    // between the bound and a modest envelope so a lowering regression
    // in either direction fails loudly.
    GoldenFixture fx;
    HybridConfig hy;
    hy.tpDegree = 1;
    hy.ppDegree = 4;
    hy.dpDegree = 2;
    hy.numMicroBatches = 8;
    hy.schedule = PipelineSchedule::Interleaved1F1B;
    const auto closed = hybridTrainingMs(fx.oracle, fx.comms, fx.server,
                                         fx.model, 16, hy);
    const SimResult sim = simulateHybrid(fx.oracle, fx.comms, fx.server,
                                         fx.model, 16, hy);
    ASSERT_FALSE(closed.oom);
    EXPECT_GE(sim.hybrid.latencyMs, closed.latencyMs * (1.0 - 1e-9));
    EXPECT_LE(sim.hybrid.latencyMs, closed.latencyMs * 1.06);
}

TEST(SimParity, PipelinePathMatchesClosedForm)
{
    // The single-axis pipeline entry point against pipelineTrainingMs.
    GoldenFixture fx;
    fx.server.numGpus = 4;
    PipelineConfig pipe;
    pipe.numMicroBatches = 8;
    for (PipelineSchedule s :
         {PipelineSchedule::GPipe, PipelineSchedule::OneFOneB}) {
        pipe.schedule = s;
        const auto closed = pipelineTrainingMs(fx.oracle, fx.comms,
                                               fx.server, fx.model, 8, pipe);
        const SimResult sim = simulatePipeline(fx.oracle, fx.comms,
                                               fx.server, fx.model, 8, pipe);
        ASSERT_FALSE(closed.oom);
        EXPECT_LT(relErr(sim.hybrid.latencyMs, closed.latencyMs), 1e-3)
            << dist::pipelineScheduleName(s);
        EXPECT_DOUBLE_EQ(sim.hybrid.commBytes, closed.commBytes);
    }
}

TEST(SimDeterminism, SameSeedSameTimeline)
{
    GoldenFixture fx;
    HybridConfig hy;
    hy.tpDegree = 1;
    hy.ppDegree = 4;
    hy.dpDegree = 2;
    hy.numMicroBatches = 8;
    hy.schedule = PipelineSchedule::OneFOneB;
    SimOptions opt;
    opt.jitterFraction = 0.2;
    opt.seed = 42;
    const SimResult a = simulateHybrid(fx.oracle, fx.comms, fx.server,
                                       fx.model, 16, hy, opt);
    const SimResult b = simulateHybrid(fx.oracle, fx.comms, fx.server,
                                       fx.model, 16, hy, opt);
    EXPECT_DOUBLE_EQ(a.hybrid.latencyMs, b.hybrid.latencyMs);
    EXPECT_EQ(a.events, b.events);

    // A different seed perturbs differently.
    opt.seed = 43;
    const SimResult c = simulateHybrid(fx.oracle, fx.comms, fx.server,
                                       fx.model, 16, hy, opt);
    EXPECT_NE(a.hybrid.latencyMs, c.hybrid.latencyMs);
}

TEST(SimDeterminism, ZeroJitterIsTheUnperturbedSchedule)
{
    GoldenFixture fx;
    HybridConfig hy;
    hy.tpDegree = 2;
    hy.ppDegree = 2;
    hy.dpDegree = 2;
    hy.numMicroBatches = 4;
    hy.schedule = PipelineSchedule::OneFOneB;
    SimOptions zero;
    zero.jitterFraction = 0.0;
    zero.seed = 7; // seed is irrelevant at zero jitter
    const SimResult base = simulateHybrid(fx.oracle, fx.comms, fx.server,
                                          fx.model, 16, hy);
    const SimResult jit = simulateHybrid(fx.oracle, fx.comms, fx.server,
                                         fx.model, 16, hy, zero);
    EXPECT_DOUBLE_EQ(base.hybrid.latencyMs, jit.hybrid.latencyMs);
}

TEST(SimJitter, MoreJitterIsNeverFaster)
{
    // The pass-2 replay executes a fixed DAG, so the makespan is
    // monotone in the jitter fraction for any fixed seed.
    GoldenFixture fx;
    HybridConfig hy;
    hy.tpDegree = 1;
    hy.ppDegree = 4;
    hy.dpDegree = 2;
    hy.numMicroBatches = 8;
    hy.schedule = PipelineSchedule::OneFOneB;
    for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        double prev = 0.0;
        for (double frac : {0.0, 0.05, 0.1, 0.2, 0.4}) {
            SimOptions opt;
            opt.jitterFraction = frac;
            opt.seed = seed;
            const SimResult r = simulateHybrid(
                fx.oracle, fx.comms, fx.server, fx.model, 16, hy, opt);
            EXPECT_GE(r.hybrid.latencyMs, prev)
                << "seed " << seed << " frac " << frac;
            prev = r.hybrid.latencyMs;
        }
    }
}

TEST(SimStraggler, SlowStageStretchesTheWholePipeline)
{
    GoldenFixture fx;
    HybridConfig hy;
    hy.tpDegree = 1;
    hy.ppDegree = 4;
    hy.dpDegree = 2;
    hy.numMicroBatches = 8;
    hy.schedule = PipelineSchedule::OneFOneB;
    const SimResult base = simulateHybrid(fx.oracle, fx.comms, fx.server,
                                          fx.model, 16, hy);
    // Slowing the bottleneck stage (the last one carries the LM head)
    // stretches every steady-state turn: a large, sub-linear hit.
    SimOptions opt;
    opt.stragglerStage = 3;
    opt.stragglerFactor = 1.5;
    const SimResult slow = simulateHybrid(fx.oracle, fx.comms, fx.server,
                                          fx.model, 16, hy, opt);
    EXPECT_GT(slow.hybrid.latencyMs, base.hybrid.latencyMs * 1.2);
    EXPECT_LT(slow.hybrid.latencyMs, base.hybrid.latencyMs * 1.5);
    // A non-bottleneck straggler hurts less: only its own fill/drain
    // legs stretch until it becomes the new bottleneck.
    opt.stragglerStage = 1;
    const SimResult mid = simulateHybrid(fx.oracle, fx.comms, fx.server,
                                         fx.model, 16, hy, opt);
    EXPECT_GT(mid.hybrid.latencyMs, base.hybrid.latencyMs);
    EXPECT_LT(mid.hybrid.latencyMs, slow.hybrid.latencyMs);
}

TEST(SimZeroBubble, BeatsOneFOneBOnBubble)
{
    // The W-pass fills drain idle: zero-bubble's bubble never exceeds
    // 1F1B's on the same configuration, and wins strictly on a deep
    // pipeline.
    GoldenFixture fx;
    HybridConfig hy;
    hy.tpDegree = 1;
    hy.ppDegree = 4;
    hy.dpDegree = 2;
    hy.numMicroBatches = 8;
    hy.schedule = PipelineSchedule::OneFOneB;
    const SimResult ofob = simulateHybrid(fx.oracle, fx.comms, fx.server,
                                          fx.model, 16, hy);
    hy.schedule = PipelineSchedule::ZeroBubble;
    const SimResult zb = simulateHybrid(fx.oracle, fx.comms, fx.server,
                                        fx.model, 16, hy);
    ASSERT_FALSE(zb.hybrid.oom);
    EXPECT_LE(zb.hybrid.bubbleMs, ofob.hybrid.bubbleMs * (1.0 + 1e-9));
    EXPECT_LT(zb.hybrid.latencyMs, ofob.hybrid.latencyMs);
    EXPECT_GT(ofob.hybrid.bubbleMs - zb.hybrid.bubbleMs,
              0.05 * ofob.hybrid.bubbleMs);
}

TEST(SimZeroBubble, ClosedFormRefusesToPriceIt)
{
    // The dist algebra cannot express the B/W split: pricing zero-
    // bubble through hybridTrainingMs is a programming error (abort),
    // and validateStrategy screens it off the single-axis path.
    GoldenFixture fx;
    HybridConfig hy;
    hy.ppDegree = 2;
    hy.tpDegree = 1;
    hy.dpDegree = 4;
    hy.numMicroBatches = 4;
    hy.schedule = PipelineSchedule::ZeroBubble;
    EXPECT_DEATH(hybridTrainingMs(fx.oracle, fx.comms, fx.server,
                                  fx.model, 16, hy),
                 "zero-bubble");
    PipelineConfig pipe;
    pipe.schedule = PipelineSchedule::ZeroBubble;
    pipe.numMicroBatches = 4;
    EXPECT_FALSE(validateStrategy(fx.model, fx.server, 16,
                                  dist::Parallelism::Pipeline, pipe)
                     .empty());
}

TEST(SimContention, SharedFabricNeverBeatsDisjointLinks)
{
    // Reducers contending on one fabric can only slow the tail down.
    GoldenFixture fx;
    HybridConfig hy;
    hy.tpDegree = 1;
    hy.ppDegree = 4;
    hy.dpDegree = 2;
    hy.numMicroBatches = 8;
    hy.schedule = PipelineSchedule::OneFOneB;
    const SimResult disjoint = simulateHybrid(fx.oracle, fx.comms,
                                              fx.server, fx.model, 16, hy);
    SimOptions opt;
    opt.sharedFabric = true;
    const SimResult shared = simulateHybrid(fx.oracle, fx.comms,
                                            fx.server, fx.model, 16, hy,
                                            opt);
    EXPECT_GE(shared.hybrid.latencyMs,
              disjoint.hybrid.latencyMs * (1.0 - 1e-9));
    EXPECT_GE(shared.hybrid.exposedDdpMs,
              disjoint.hybrid.exposedDdpMs * (1.0 - 1e-9));
}

TEST(SimSweep, SimulatorArmStampsEngineAndAddsZeroBubble)
{
    GoldenFixture fx;
    fx.server.numGpus = 4;
    dist::SweepOptions base;
    base.microBatchCandidates = {4, 8};
    base.tryRecompute = false;
    base.threads = 1;
    const dist::SweepOptions simOpts = simulatorSweepOptions(
        fx.oracle, fx.comms, fx.server, fx.model, 16, base);
    const auto entries = dist::sweepStrategies(fx.oracle, fx.comms,
                                               fx.server, fx.model, 16,
                                               simOpts);
    ASSERT_FALSE(entries.empty());
    bool sawZeroBubble = false;
    for (const auto &e : entries) {
        EXPECT_EQ(e.engine, dist::SweepEngine::Simulator);
        if (e.config.schedule == PipelineSchedule::ZeroBubble) {
            sawZeroBubble = true;
            EXPECT_GT(e.config.ppDegree, 1);
        }
    }
    EXPECT_TRUE(sawZeroBubble);
    // Ranked fastest-first, like the closed-form sweep.
    for (size_t i = 1; i < entries.size(); ++i)
        EXPECT_LE(entries[i - 1].result.latencyMs,
                  entries[i].result.latencyMs);
}

TEST(SimValidation, RejectsInvalidConfigurations)
{
    GoldenFixture fx;
    HybridConfig hy;
    hy.tpDegree = 3; // does not divide 8 GPUs
    EXPECT_DEATH(simulateHybrid(fx.oracle, fx.comms, fx.server, fx.model,
                                16, hy),
                 "simulateHybrid");
    PipelineConfig pipe;
    pipe.schedule = PipelineSchedule::Interleaved1F1B;
    pipe.numMicroBatches = 4;
    EXPECT_THROW(simulatePipeline(fx.oracle, fx.comms, fx.server,
                                  fx.model, 16, pipe),
                 std::runtime_error);
}

} // namespace
} // namespace neusight::sim
