/**
 * @file
 * Integration tests: train a (scaled-down) NeuSight on the simulator
 * corpus and assert the paper's qualitative results — NeuSight beats
 * every baseline end-to-end, stays accurate on held-out GPUs and
 * out-of-distribution shapes, predicts fused graphs, tracks distributed
 * ground truth, and round-trips through trainOrLoad.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "baselines/habitat.hpp"
#include "common/logging.hpp"
#include "baselines/li.hpp"
#include "baselines/roofline.hpp"
#include "core/predictor.hpp"
#include "dist/parallel.hpp"
#include "eval/harness.hpp"
#include "eval/oracle.hpp"
#include "graph/fusion.hpp"

namespace neusight {
namespace {

using core::NeuSight;
using gpusim::OpType;

class EndToEnd : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setQuiet(true);
        dataset::SamplerConfig sampler;
        sampler.bmmSamples = 900;
        sampler.fcSamples = 600;
        sampler.elementwiseSamples = 450;
        sampler.softmaxSamples = 250;
        sampler.layernormSamples = 250;
        corpus = new std::map<OpType, dataset::OperatorDataset>(
            dataset::generateOperatorData(gpusim::nvidiaTrainingSet(),
                                          sampler));

        core::PredictorConfig cfg;
        cfg.train.epochs = 35;
        neusight = new NeuSight(cfg);
        neusight->train(*corpus);

        li = new baselines::LiPredictor();
        li->train(*corpus);

        baselines::HabitatConfig hcfg;
        hcfg.train.epochs = 35;
        habitat = new baselines::HabitatPredictor(hcfg);
        habitat->train(*corpus);
    }

    static void
    TearDownTestSuite()
    {
        delete habitat;
        delete li;
        delete neusight;
        delete corpus;
        habitat = nullptr;
        li = nullptr;
        neusight = nullptr;
        corpus = nullptr;
    }

    static std::map<OpType, dataset::OperatorDataset> *corpus;
    static NeuSight *neusight;
    static baselines::LiPredictor *li;
    static baselines::HabitatPredictor *habitat;
    static inline const baselines::RooflinePredictor roofline{};
};

std::map<OpType, dataset::OperatorDataset> *EndToEnd::corpus = nullptr;
NeuSight *EndToEnd::neusight = nullptr;
baselines::LiPredictor *EndToEnd::li = nullptr;
baselines::HabitatPredictor *EndToEnd::habitat = nullptr;

TEST_F(EndToEnd, NeuSightBeatsAllBaselines)
{
    auto cases = eval::paperEvaluationCases(false);
    cases.resize(6); // BERT-Large + GPT2-Large + GPT3-XL at two batches.
    const std::vector<gpusim::GpuSpec> gpus = {
        gpusim::findGpu("V100"), gpusim::findGpu("A100-40GB"),
        gpusim::findGpu("H100"), gpusim::findGpu("L4")};
    const auto results = eval::evaluateCases(
        cases, gpus, {neusight, &roofline, habitat, li});
    const auto err = eval::endToEndError(results);
    ASSERT_TRUE(err.count("NeuSight"));
    EXPECT_LT(err.at("NeuSight"), 15.0);
    EXPECT_LT(err.at("NeuSight"), err.at("Roofline"));
    EXPECT_LT(err.at("NeuSight"), err.at("Habitat"));
    EXPECT_LT(err.at("NeuSight"), err.at("Li et al."));
}

TEST_F(EndToEnd, AccurateOnHeldOutGpus)
{
    // H100 / L4 / A100-80GB were never in the training set.
    auto cases = eval::paperEvaluationCases(false);
    cases.resize(4);
    const std::vector<gpusim::GpuSpec> gpus = {
        gpusim::findGpu("H100"), gpusim::findGpu("L4"),
        gpusim::findGpu("A100-80GB")};
    const auto results =
        eval::evaluateCases(cases, gpus, {neusight});
    const auto err = eval::outOfDistributionError(results);
    EXPECT_LT(err.at("NeuSight"), 20.0);
}

TEST_F(EndToEnd, OutOfDistributionKernelsStayBounded)
{
    // BMM dims far beyond the 1..1024 training range (paper Section 3).
    const gpusim::GpuSpec &h100 = gpusim::findGpu("H100");
    const gpusim::Device dev(h100);
    for (uint64_t dim : {2048u, 4096u}) {
        const auto desc = gpusim::makeBmm(8, dim, dim, dim);
        const double measured = dev.measureKernelMs(desc);
        const double predicted = neusight->predictKernelMs(desc, h100);
        EXPECT_LT(std::abs(predicted - measured) / measured, 0.40) << dim;
    }
}

TEST_F(EndToEnd, TrainingGraphsPredictAccurately)
{
    const eval::SimulatorOracle oracle;
    const gpusim::GpuSpec &a100 = gpusim::findGpu("A100-80GB");
    const auto g =
        graph::buildTrainingGraph(graph::findModel("GPT2-Large"), 4);
    const double measured = oracle.predictGraphMs(g, a100);
    const double predicted = neusight->predictGraphMs(g, a100);
    EXPECT_LT(std::abs(predicted - measured) / measured, 0.20);
}

TEST_F(EndToEnd, FusedGraphsPredictAccurately)
{
    const eval::SimulatorOracle oracle;
    const gpusim::GpuSpec &h100 = gpusim::findGpu("H100");
    const auto g = graph::fuseGraph(
        graph::buildInferenceGraph(graph::findModel("BERT-Large"), 8));
    const double measured = oracle.predictGraphMs(g, h100);
    const double predicted = neusight->predictGraphMs(g, h100);
    EXPECT_LT(std::abs(predicted - measured) / measured, 0.35);
    // Fusion speeds up the measured model (Table 7 behaviour).
    const double unfused = oracle.predictGraphMs(
        graph::buildInferenceGraph(graph::findModel("BERT-Large"), 8),
        h100);
    EXPECT_LT(measured, unfused);
}

TEST_F(EndToEnd, Fp16TensorCorePredictionHolds)
{
    // Figure 10: prediction adapts to the new datapath via features.
    const gpusim::GpuSpec &h100 = gpusim::findGpu("H100");
    const gpusim::Device dev(h100);
    double total_err = 0.0;
    int count = 0;
    for (uint64_t n : {1024u, 2048u, 4096u}) {
        const auto desc =
            gpusim::makeBmm(16, n, n, n, gpusim::DataType::Fp16, true);
        const double measured = dev.measureKernelMs(desc);
        const double predicted = neusight->predictKernelMs(desc, h100);
        total_err += std::abs(predicted - measured) / measured;
        ++count;
    }
    EXPECT_LT(total_err / count, 0.40);
}

TEST_F(EndToEnd, DistributedForecastTracksGroundTruth)
{
    // The full-budget run (bench/table08) holds ~10% on both servers;
    // this fixture trains a scaled-down predictor, so the in-distribution
    // A100 server gets the tight bound and the held-out H100 server a
    // looser one (its single-kernel OOD bound elsewhere is 40%).
    const eval::SimulatorOracle oracle;
    const auto &model = graph::findModel("GPT2-Large");
    struct ServerCase
    {
        dist::ServerConfig server;
        double bound;
    };
    dist::ServerConfig a100;
    a100.systemName = "A100-NVLink";
    a100.gpuName = "A100-40GB";
    a100.numGpus = 4;
    a100.linkGBps = 600.0;
    dist::ServerConfig h100;
    h100.systemName = "H100-DGX";
    h100.gpuName = "H100";
    h100.numGpus = 4;
    for (const auto &[server, bound] :
         {ServerCase{a100, 0.25}, ServerCase{h100, 0.55}}) {
        const dist::SimCollectives sim_comms(server.systemName);
        const dist::EstimatedCollectives est_comms("A100-NVLink", 600.0);
        for (dist::Parallelism strategy :
             {dist::Parallelism::Data, dist::Parallelism::Tensor,
              dist::Parallelism::Pipeline}) {
            const auto truth = dist::distributedTrainingMs(
                oracle, sim_comms, server, model, 4, strategy);
            const auto guess = dist::distributedTrainingMs(
                *neusight, est_comms, server, model, 4, strategy);
            ASSERT_FALSE(truth.oom);
            ASSERT_FALSE(guess.oom);
            EXPECT_LT(std::abs(guess.latencyMs - truth.latencyMs) /
                          truth.latencyMs,
                      bound)
                << server.systemName << " "
                << dist::parallelismName(strategy);
        }
    }
}

TEST_F(EndToEnd, PerOperatorErrorsFavorNeuSight)
{
    std::vector<eval::WorkloadCase> cases;
    eval::WorkloadCase c;
    c.model = graph::findModel("BERT-Large");
    c.batch = 8;
    cases.push_back(c);
    const std::vector<gpusim::GpuSpec> gpus = {gpusim::findGpu("H100")};
    const auto errs =
        eval::perOperatorErrors(cases, gpus, {neusight, &roofline});
    for (OpType type : {OpType::BatchedMatmul, OpType::FullyConnected}) {
        ASSERT_TRUE(errs.count(type));
        EXPECT_LT(errs.at(type).at("NeuSight"),
                  errs.at(type).at("Roofline"))
            << gpusim::opTypeName(type);
    }
}

TEST_F(EndToEnd, SaveReloadKeepsEndToEndPrediction)
{
    const std::string path = "/tmp/neusight_e2e_model.bin";
    neusight->save(path);
    // Epochs differ from the trained config; loading only checks the
    // architecture (hidden dim / layers), which matches the defaults.
    NeuSight restored{core::PredictorConfig{}};
    restored.load(path);
    const auto g =
        graph::buildInferenceGraph(graph::findModel("GPT3-XL"), 2);
    const gpusim::GpuSpec &h100 = gpusim::findGpu("H100");
    EXPECT_DOUBLE_EQ(restored.predictGraphMs(g, h100),
                     neusight->predictGraphMs(g, h100));
    std::filesystem::remove(path);
}

TEST(TrainOrLoad, CachesToDisk)
{
    setQuiet(true);
    const std::string path = "/tmp/neusight_cache_test.bin";
    std::filesystem::remove(path);
    dataset::SamplerConfig sampler;
    sampler.bmmSamples = 150;
    sampler.fcSamples = 100;
    sampler.elementwiseSamples = 80;
    sampler.softmaxSamples = 50;
    sampler.layernormSamples = 50;
    core::PredictorConfig cfg;
    cfg.hiddenDim = 16;
    cfg.hiddenLayers = 2;
    cfg.train.epochs = 5;
    const NeuSight first = NeuSight::trainOrLoad(
        path, gpusim::nvidiaTrainingSet(), sampler, cfg);
    ASSERT_TRUE(std::filesystem::exists(path));
    const NeuSight second = NeuSight::trainOrLoad(
        path, gpusim::nvidiaTrainingSet(), sampler, cfg);
    const auto desc = gpusim::makeBmm(4, 256, 256, 256);
    const gpusim::GpuSpec &gpu = gpusim::findGpu("H100");
    EXPECT_DOUBLE_EQ(first.predictKernelMs(desc, gpu),
                     second.predictKernelMs(desc, gpu));
    std::filesystem::remove(path);
}

} // namespace
} // namespace neusight
