/**
 * @file
 * Unit tests for the common utilities: statistics, error metrics, linear
 * fits, RNG determinism, CSV emission and table rendering.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace neusight {
namespace {

TEST(Stats, AbsPercentageErrorBasics)
{
    EXPECT_DOUBLE_EQ(absPercentageError(110.0, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(absPercentageError(90.0, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(absPercentageError(100.0, 100.0), 0.0);
    EXPECT_DOUBLE_EQ(absPercentageError(-110.0, -100.0), 10.0);
}

TEST(Stats, MeanAbsPercentageError)
{
    EXPECT_DOUBLE_EQ(
        meanAbsPercentageError({110.0, 80.0}, {100.0, 100.0}), 15.0);
    EXPECT_DOUBLE_EQ(meanAbsPercentageError({}, {}), 0.0);
}

TEST(Stats, SymmetricMapeIsSymmetric)
{
    const double ab = symmetricMape({120.0}, {100.0});
    const double ba = symmetricMape({100.0}, {120.0});
    EXPECT_DOUBLE_EQ(ab, ba);
    // |120-100| / 110 * 100.
    EXPECT_NEAR(ab, 20.0 / 110.0 * 100.0, 1e-9);
}

TEST(Stats, SymmetricMapeBoundedBy200)
{
    EXPECT_LE(symmetricMape({1e9}, {1e-9}), 200.0 + 1e-6);
}

TEST(Stats, MeanAndStddev)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.0,
                1e-12);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(Stats, MaxValueAndPercentile)
{
    EXPECT_DOUBLE_EQ(maxValue({3.0, 9.0, 1.0}), 9.0);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile({1, 2}, 50.0), 1.5);
}

TEST(Stats, FitLineRecoversExactLine)
{
    std::vector<double> x = {1, 2, 3, 4};
    std::vector<double> y = {5, 7, 9, 11}; // y = 2x + 3.
    const LinearFit fit = fitLine(x, y);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
    EXPECT_NEAR(fit(10.0), 23.0, 1e-12);
}

TEST(Stats, FitLineDegenerateXFallsBackToMean)
{
    const LinearFit fit = fitLine({2, 2, 2}, {1, 3, 5});
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 3.0);
}

TEST(Stats, RunningMeanAccumulates)
{
    RunningMean rm;
    EXPECT_DOUBLE_EQ(rm.value(), 0.0);
    rm.add(2.0);
    rm.add(4.0);
    EXPECT_DOUBLE_EQ(rm.value(), 3.0);
    EXPECT_EQ(rm.samples(), 2u);
}

TEST(Rng, DeterministicStreams)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(3.0, 5.0);
        EXPECT_GE(u, 3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntInclusive)
{
    Rng rng(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.uniformInt(1, 4);
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 4);
        saw_lo = saw_lo || v == 1;
        saw_hi = saw_hi || v == 4;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    double total = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        total += v;
        sq += v * v;
    }
    EXPECT_NEAR(total / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, PermutationIsAPermutation)
{
    Rng rng(3);
    const auto perm = rng.permutation(100);
    std::vector<bool> seen(100, false);
    for (size_t idx : perm) {
        ASSERT_LT(idx, 100u);
        EXPECT_FALSE(seen[idx]);
        seen[idx] = true;
    }
}

TEST(Rng, HashNoiseBoundedAndDeterministic)
{
    for (uint64_t i = 0; i < 500; ++i) {
        const double v = hashNoise(i, i * 3 + 1, i * 7 + 2);
        EXPECT_GE(v, -1.0);
        EXPECT_LT(v, 1.0);
        EXPECT_DOUBLE_EQ(v, hashNoise(i, i * 3 + 1, i * 7 + 2));
    }
}

TEST(Csv, WritesHeaderAndRowsWithQuoting)
{
    const std::string path = "/tmp/neusight_csv_test.csv";
    {
        CsvWriter csv(path, {"a", "b"});
        csv.writeRow({"1", "plain"});
        csv.writeRow({"2", "needs,quote"});
        csv.writeRow({"3", "has\"quote"});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,plain");
    std::getline(in, line);
    EXPECT_EQ(line, "2,\"needs,quote\"");
    std::getline(in, line);
    EXPECT_EQ(line, "3,\"has\"\"quote\"");
    std::filesystem::remove(path);
}

TEST(Csv, RejectsWrongArity)
{
    CsvWriter csv("/tmp/neusight_csv_arity.csv", {"a", "b"});
    EXPECT_THROW(csv.writeRow({"only-one"}), std::runtime_error);
    std::filesystem::remove("/tmp/neusight_csv_arity.csv");
}

TEST(Csv, FormatsFixedPrecision)
{
    EXPECT_EQ(CsvWriter::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(CsvWriter::fmt(2.0, 1), "2.0");
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t("Demo", {"col", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("Demo"), std::string::npos);
    EXPECT_NE(out.find("col"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, PadsShortRows)
{
    TextTable t("T", {"a", "b", "c"});
    t.addRow({"only"});
    EXPECT_NO_THROW(t.render());
}

TEST(Table, NumberFormatters)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::pct(12.345, 1), "12.3%");
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("boom"), std::runtime_error);
}

TEST(Logging, EnsurePassesOnTrue)
{
    EXPECT_NO_THROW(ensure(true, "fine"));
}

} // namespace
} // namespace neusight
