/**
 * @file
 * Tests for the DNN graph substrate: Table-5 model builders (parameter
 * counts vs published sizes, FLOPs vs analytic formulas), training-graph
 * synthesis, layer-range slicing, the fusion pass, and the memory model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/fusion.hpp"
#include "graph/graph.hpp"
#include "graph/models.hpp"

namespace neusight::graph {
namespace {

using gpusim::OpType;

TEST(Models, PaperWorkloadsPresent)
{
    const auto &models = paperWorkloads();
    EXPECT_EQ(models.size(), 6u);
    for (const char *name : {"BERT-Large", "GPT2-Large", "GPT3-XL",
                             "OPT-1.3B", "GPT3-2.7B", "SwitchTrans"})
        EXPECT_NO_THROW(findModel(name)) << name;
    EXPECT_THROW(findModel("LLaMA"), std::runtime_error);
}

TEST(Models, ParameterCountsMatchPublishedSizes)
{
    // Within 5% of the nominal sizes of paper Table 5.
    EXPECT_NEAR(findModel("BERT-Large").parameterCount(), 340e6,
                340e6 * 0.05);
    EXPECT_NEAR(findModel("GPT2-Large").parameterCount(), 774e6,
                774e6 * 0.05);
    EXPECT_NEAR(findModel("GPT3-XL").parameterCount(), 1.3e9, 1.3e9 * 0.05);
    EXPECT_NEAR(findModel("OPT-1.3B").parameterCount(), 1.3e9,
                1.3e9 * 0.05);
    EXPECT_NEAR(findModel("GPT3-2.7B").parameterCount(), 2.7e9,
                2.7e9 * 0.05);
}

TEST(Models, InferenceFlopsMatchAnalyticFormula)
{
    // Dense decoder forward FLOPs ~ 2 * P_block * tokens + attention
    // quadratic term; allow 25% for heads/embeddings bookkeeping.
    const ModelConfig &m = findModel("GPT2-Large");
    const uint64_t batch = 4;
    const KernelGraph g = buildInferenceGraph(m, batch);
    const double tokens = static_cast<double>(batch) * m.seq;
    const double analytic =
        2.0 * m.parameterCount() * tokens +
        4.0 * m.numLayers * tokens * m.seq * m.hidden; // QK^T + PV.
    EXPECT_NEAR(g.totalFlops(), analytic, analytic * 0.25);
}

TEST(Models, TrainingIsAboutThreeTimesInference)
{
    const ModelConfig &m = findModel("GPT3-XL");
    const double inf = buildInferenceGraph(m, 2).totalFlops();
    const double train = buildTrainingGraph(m, 2).totalFlops();
    EXPECT_GT(train, inf * 2.5);
    EXPECT_LT(train, inf * 3.5);
}

TEST(Models, GraphScalesLinearlyWithBatch)
{
    const ModelConfig &m = findModel("BERT-Large");
    const double b1 = buildInferenceGraph(m, 1).totalFlops();
    const double b8 = buildInferenceGraph(m, 8).totalFlops();
    EXPECT_NEAR(b8, 8.0 * b1, 8.0 * b1 * 0.01);
}

TEST(Models, KernelFamiliesPresent)
{
    const KernelGraph g = buildInferenceGraph(findModel("GPT2-Large"), 2);
    const ModelConfig &m = findModel("GPT2-Large");
    // Two BMMs per layer (QK^T, PV).
    EXPECT_EQ(g.countType(OpType::BatchedMatmul), 2 * m.numLayers);
    // One softmax per layer.
    EXPECT_EQ(g.countType(OpType::Softmax), m.numLayers);
    // Two layer norms per layer + final.
    EXPECT_EQ(g.countType(OpType::LayerNorm), 2 * m.numLayers + 1);
    // QKV + proj + 2 FFN per layer + LM head.
    EXPECT_EQ(g.countType(OpType::FullyConnected), 4 * m.numLayers + 1);
    EXPECT_EQ(g.countType(OpType::Memory), 1u); // Embedding.
}

TEST(Models, BertHasClassifierHead)
{
    const KernelGraph g = buildInferenceGraph(findModel("BERT-Large"), 4);
    bool has_classifier = false;
    bool has_lm = false;
    for (const auto &node : g.nodes) {
        has_classifier |= node.label == "head.classifier";
        has_lm |= node.label == "head.lm";
    }
    EXPECT_TRUE(has_classifier);
    EXPECT_FALSE(has_lm);
}

TEST(Models, SwitchMoeLayersHaveExperts)
{
    const ModelConfig &m = findModel("SwitchTrans");
    EXPECT_EQ(m.numExperts, 4u);
    const KernelGraph g = buildInferenceGraph(m, 2);
    size_t routers = 0;
    size_t experts = 0;
    for (const auto &node : g.nodes) {
        if (node.label.find("moe.router") != std::string::npos)
            ++routers;
        if (node.label.find("moe.expert") != std::string::npos &&
            node.label.find(".ff1") != std::string::npos)
            ++experts;
    }
    EXPECT_EQ(routers, m.numLayers / 2);          // Alternate layers.
    EXPECT_EQ(experts, m.numLayers / 2 * m.numExperts);
}

TEST(Models, MoeModelHasMoreParamsThanDense)
{
    ModelConfig dense = findModel("SwitchTrans");
    dense.numExperts = 1;
    EXPECT_GT(findModel("SwitchTrans").parameterCount(),
              dense.parameterCount() * 1.5);
}

TEST(Models, TrainingGraphHasBackwardKernels)
{
    const KernelGraph g = buildTrainingGraph(findModel("BERT-Large"), 2);
    size_t bwd = 0;
    for (const auto &node : g.nodes)
        if (node.label.find(".bwd") != std::string::npos)
            ++bwd;
    EXPECT_GT(bwd, 100u);
    // GEMM backward emits two kernels per forward GEMM.
    const KernelGraph inf = buildInferenceGraph(findModel("BERT-Large"), 2);
    EXPECT_GE(g.countType(OpType::FullyConnected),
              3 * inf.countType(OpType::FullyConnected) - 2);
}

TEST(Models, LayerRangeStitchingCoversFullModel)
{
    const ModelConfig &m = findModel("GPT3-XL");
    const uint64_t batch = 2;
    const double full = buildTrainingGraph(m, batch).totalFlops();
    double stitched = 0.0;
    const int stages = 4;
    const uint64_t per_stage = m.numLayers / stages;
    for (int st = 0; st < stages; ++st) {
        LayerRange range;
        range.beginLayer = per_stage * static_cast<uint64_t>(st);
        range.endLayer = range.beginLayer + per_stage;
        range.includeEmbedding = st == 0;
        range.includeHead = st == stages - 1;
        range.training = true;
        stitched += buildLayerRangeGraph(m, batch, range).totalFlops();
    }
    // Training graphs include dropout only in the forward they were built
    // with; stitching must reproduce the full graph's work exactly.
    EXPECT_NEAR(stitched, full, full * 1e-9);
}

TEST(Models, LayerRangeRejectsBadRange)
{
    LayerRange range;
    range.beginLayer = 30;
    range.endLayer = 10;
    EXPECT_DEATH(
        buildLayerRangeGraph(findModel("GPT3-XL"), 1, range),
        "layer range");
}

TEST(Models, MemoryModelMonotonicInBatch)
{
    const ModelConfig &m = findModel("GPT2-Large");
    EXPECT_LT(modelMemoryBytes(m, 1, false), modelMemoryBytes(m, 8, false));
    EXPECT_LT(modelMemoryBytes(m, 1, true), modelMemoryBytes(m, 8, true));
}

TEST(Models, TrainingNeedsMoreMemoryThanInference)
{
    const ModelConfig &m = findModel("GPT3-XL");
    EXPECT_GT(modelMemoryBytes(m, 2, true),
              3.0 * modelMemoryBytes(m, 2, false));
}

TEST(Models, MemoryIncludesParameters)
{
    const ModelConfig &m = findModel("GPT3-2.7B");
    EXPECT_GT(modelMemoryBytes(m, 1, false), m.parameterCount() * 4.0);
}

TEST(Graph, AccountingHelpers)
{
    KernelGraph g;
    g.add(gpusim::makeBmm(1, 64, 64, 64), "a");
    g.add(gpusim::makeElementwise("add", 100, 2, 1.0), "b");
    g.nodes.push_back(KernelNode::comm(NodeKind::AllReduce, 1e6, "ar"));
    EXPECT_EQ(g.computeNodeCount(), 2u);
    EXPECT_EQ(g.countType(OpType::BatchedMatmul), 1u);
    EXPECT_DOUBLE_EQ(g.totalFlops(),
                     2.0 * 64 * 64 * 64 + 100.0);
}

TEST(Fusion, AddLayerNormFuses)
{
    const auto add = gpusim::makeElementwise("add", 64 * 128, 2, 1.0);
    const auto ln = gpusim::makeLayerNorm(64, 128);
    ASSERT_TRUE(canFuse(add, ln));
    const auto fused = fuseKernels(add, ln);
    EXPECT_EQ(fused.type, OpType::Elementwise); // First op's predictor.
    EXPECT_EQ(fused.opName, "add+layernorm");
    EXPECT_DOUBLE_EQ(fused.flops, add.flops + ln.flops);
    // Intermediate store + load dropped.
    EXPECT_DOUBLE_EQ(fused.memBytes,
                     add.memBytes + ln.memBytes - 2.0 * 64 * 128 * 4);
}

TEST(Fusion, GemmActivationFuses)
{
    const auto linear = gpusim::makeLinear(256, 512, 1024);
    const auto gelu =
        gpusim::makeElementwise("gelu", 256 * 1024, 1, 8.0);
    ASSERT_TRUE(canFuse(linear, gelu));
    const auto fused = fuseKernels(linear, gelu);
    EXPECT_EQ(fused.type, OpType::FullyConnected);
    EXPECT_EQ(fused.opName, "linear+gelu");
    EXPECT_LT(fused.memBytes, linear.memBytes + gelu.memBytes);
    EXPECT_EQ(fused.reduceDim, 512u);
}

TEST(Fusion, MismatchedShapesDoNotFuse)
{
    EXPECT_FALSE(canFuse(gpusim::makeElementwise("add", 100, 2, 1.0),
                         gpusim::makeLayerNorm(64, 128)));
    EXPECT_FALSE(canFuse(gpusim::makeLinear(256, 512, 1024),
                         gpusim::makeElementwise("gelu", 999, 1, 8.0)));
    // Non-activation elementwise does not fuse into a GEMM epilogue.
    EXPECT_FALSE(canFuse(gpusim::makeLinear(16, 16, 16),
                         gpusim::makeElementwise("add", 256, 2, 1.0)));
}

TEST(Fusion, GraphPassReducesNodesPreservesFlops)
{
    const ModelConfig &m = findModel("GPT2-Large");
    const KernelGraph g = buildInferenceGraph(m, 4);
    const KernelGraph fused = fuseGraph(g);
    EXPECT_LT(fused.computeNodeCount(), g.computeNodeCount());
    EXPECT_NEAR(fused.totalFlops(), g.totalFlops(), g.totalFlops() * 1e-12);
    EXPECT_LT(fused.totalMemBytes(), g.totalMemBytes());
}

TEST(Fusion, FusesResidualIntoNextLayerNorm)
{
    const KernelGraph g =
        fuseGraph(buildInferenceGraph(findModel("BERT-Large"), 2));
    size_t fused_ln = 0;
    size_t fused_gelu = 0;
    for (const auto &node : g.nodes) {
        if (node.kernel.opName == "add+layernorm")
            ++fused_ln;
        if (node.kernel.opName == "linear+gelu")
            ++fused_gelu;
    }
    const ModelConfig &m = findModel("BERT-Large");
    // attn.residual+ln2 every layer, ff.residual+next ln1 / final ln,
    // plus the embedding position-add fusing into layer 0's ln1.
    EXPECT_EQ(fused_ln, 2 * m.numLayers + 1);
    EXPECT_EQ(fused_gelu, m.numLayers);
}

TEST(Fusion, CommNodesBlockFusion)
{
    KernelGraph g;
    g.add(gpusim::makeElementwise("add", 64 * 128, 2, 1.0), "add");
    g.nodes.push_back(KernelNode::comm(NodeKind::AllReduce, 1.0, "ar"));
    g.add(gpusim::makeLayerNorm(64, 128), "ln");
    const KernelGraph fused = fuseGraph(g);
    EXPECT_EQ(fused.nodes.size(), 3u);
}

/** Fusion invariants swept over every paper workload and phase. */
struct FusionCase
{
    const char *model;
    uint64_t batch;
    bool training;
};

class FusionSweep : public ::testing::TestWithParam<FusionCase>
{
};

TEST_P(FusionSweep, PassPreservesWorkAndReducesTraffic)
{
    const FusionCase &c = GetParam();
    const auto &model = findModel(c.model);
    const KernelGraph g = c.training
                              ? buildTrainingGraph(model, c.batch)
                              : buildInferenceGraph(model, c.batch);
    const KernelGraph fused = fuseGraph(g);
    // FLOPs are conserved exactly: fusion only merges kernels.
    EXPECT_NEAR(fused.totalFlops(), g.totalFlops(),
                g.totalFlops() * 1e-12);
    // Traffic strictly drops (every model has residual+LN pairs).
    EXPECT_LT(fused.totalMemBytes(), g.totalMemBytes());
    // Node count drops, and re-fusing is a fixed point for the pairs the
    // single pass targets.
    EXPECT_LT(fused.computeNodeCount(), g.computeNodeCount());
    const KernelGraph twice = fuseGraph(fused);
    EXPECT_DOUBLE_EQ(twice.totalMemBytes(), fused.totalMemBytes());
}

INSTANTIATE_TEST_SUITE_P(
    PaperWorkloads, FusionSweep,
    ::testing::Values(FusionCase{"BERT-Large", 8, false},
                      FusionCase{"BERT-Large", 8, true},
                      FusionCase{"GPT2-Large", 4, false},
                      FusionCase{"GPT2-Large", 4, true},
                      FusionCase{"GPT3-XL", 2, false},
                      FusionCase{"OPT-1.3B", 2, false},
                      FusionCase{"GPT3-2.7B", 2, false},
                      FusionCase{"SwitchTrans", 4, false}));

} // namespace
} // namespace neusight::graph
