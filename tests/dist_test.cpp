/**
 * @file
 * Tests for the distributed layer: collective cost models (ground truth
 * and estimator), the DP/TP/PP graph transforms, the GPipe schedule,
 * memory screening, and the multi-node hierarchy.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/roofline.hpp"
#include "dist/collective.hpp"
#include "dist/parallel.hpp"
#include "eval/oracle.hpp"

namespace neusight::dist {
namespace {

using graph::ModelConfig;
using graph::NodeKind;

TEST(Collectives, SingleGpuAllReduceIsFree)
{
    const SimCollectives sim("A100-NVLink");
    EXPECT_DOUBLE_EQ(sim.allReduceMs(1e9, 1, 600.0), 0.0);
    EXPECT_DOUBLE_EQ(sim.allReduceMs(0.0, 4, 600.0), 0.0);
}

TEST(Collectives, AllReduceMonotonicInBytes)
{
    const SimCollectives sim("A100-NVLink");
    double prev = 0.0;
    for (double bytes : {1e6, 1e7, 1e8, 1e9}) {
        const double ms = sim.allReduceMs(bytes, 4, 600.0);
        EXPECT_GT(ms, prev);
        prev = ms;
    }
}

TEST(Collectives, AllReduceApproachesRingBound)
{
    // For huge messages the ring bound 2(n-1)/n * bytes / link governs.
    const SimCollectives sim("H100-DGX");
    const double bytes = 8e9;
    const double ms = sim.allReduceMs(bytes, 4, 900.0);
    const double ideal_ms = 2.0 * 3.0 / 4.0 * bytes / (900e9) * 1e3;
    EXPECT_GT(ms, ideal_ms);        // Never beats the wire.
    EXPECT_LT(ms, ideal_ms * 1.6);  // But close at saturation.
}

TEST(Collectives, SmallMessagesAreLatencyBound)
{
    const SimCollectives sim("A100-NVLink");
    const double tiny = sim.sendRecvMs(1024.0, 600.0);
    EXPECT_GT(tiny, 5e-3); // Dominated by hop latency (~8 us).
}

TEST(Collectives, FasterLinkIsFaster)
{
    const SimCollectives sim("X");
    EXPECT_LT(sim.allReduceMs(1e9, 4, 900.0),
              sim.allReduceMs(1e9, 4, 600.0));
}

TEST(Collectives, EstimatorTracksReferenceSystemClosely)
{
    // Calibrated on the same system it predicts: error from the
    // interpolation only.
    const SimCollectives sim("A100-NVLink");
    const EstimatedCollectives est("A100-NVLink", 600.0);
    for (double bytes : {1e6, 3e7, 5e8, 2e9}) {
        const double truth = sim.allReduceMs(bytes, 4, 600.0);
        const double guess = est.allReduceMs(bytes, 4, 600.0);
        EXPECT_NEAR(guess, truth, truth * 0.15) << bytes;
    }
}

TEST(Collectives, EstimatorTransfersAcrossSystems)
{
    // Calibrated on A100-NVLink, applied to H100-DGX: modest error from
    // the hidden per-system residual (paper Section 5.1 methodology).
    const SimCollectives truth("H100-DGX");
    const EstimatedCollectives est("A100-NVLink", 600.0);
    const double bytes = 1e9;
    const double t = truth.allReduceMs(bytes, 4, 900.0);
    const double g = est.allReduceMs(bytes, 4, 900.0);
    EXPECT_NEAR(g, t, t * 0.30);
}

TEST(Parallel, ServerLinkDefaultsToSpec)
{
    ServerConfig server;
    server.gpuName = "H100";
    EXPECT_DOUBLE_EQ(server.effectiveLinkGBps(), 900.0);
    server.linkGBps = 123.0;
    EXPECT_DOUBLE_EQ(server.effectiveLinkGBps(), 123.0);
}

TEST(Parallel, ServerAcceptsHypotheticalGpuSpec)
{
    // A JSON-defined GPU (gpusim::resolveGpu) is not in the Table-4
    // database; pinning its spec must carry it through the whole
    // distributed forecast instead of dying in findGpu.
    gpusim::GpuSpec next = gpusim::findGpu("H100");
    next.name = "H200-hypothetical";
    next.memoryBwGBps *= 1.4;
    next.interconnectGBps = 1100.0;

    ServerConfig server;
    server.setGpu(next);
    server.numGpus = 4;
    EXPECT_EQ(server.gpuName, "H200-hypothetical");
    EXPECT_DOUBLE_EQ(server.effectiveLinkGBps(), 1100.0);
    EXPECT_DOUBLE_EQ(server.resolvedGpu().memoryBwGBps,
                     next.memoryBwGBps);

    const eval::SimulatorOracle oracle;
    const SimCollectives comms("hypothetical-server");
    for (Parallelism strategy :
         {Parallelism::Data, Parallelism::Tensor, Parallelism::Pipeline}) {
        const auto result = distributedTrainingMs(
            oracle, comms, server, graph::findModel("GPT2-Large"), 4,
            strategy);
        EXPECT_FALSE(result.oom);
        EXPECT_GT(result.latencyMs, 0.0);
    }
}

TEST(Parallel, DataParallelGraphHasOneGradAllReduce)
{
    const ModelConfig &m = graph::findModel("GPT2-Large");
    const auto g = buildDataParallelGraph(m, 8, 4);
    size_t allreduce = 0;
    for (const auto &node : g.nodes)
        if (node.kind == NodeKind::AllReduce) {
            ++allreduce;
            EXPECT_DOUBLE_EQ(node.commBytes, m.parameterCount() * 4.0);
        }
    EXPECT_EQ(allreduce, 1u);
    // Compute equals a local training graph at batch/width.
    const auto local = graph::buildTrainingGraph(m, 2);
    EXPECT_DOUBLE_EQ(g.totalFlops(), local.totalFlops());
}

TEST(Parallel, TensorParallelShardsCompute)
{
    const ModelConfig &m = graph::findModel("GPT2-Large");
    const auto full = buildTensorParallelGraph(m, 4, 1, false);
    const auto tp4 = buildTensorParallelGraph(m, 4, 4, false);
    // Attention + FFN work shards ~4x; embeddings/LN/head replicate.
    EXPECT_LT(tp4.totalFlops(), full.totalFlops() / 2.0);
    EXPECT_GT(tp4.totalFlops(), full.totalFlops() / 8.0);
}

TEST(Parallel, TensorParallelAllReducesPerLayer)
{
    const ModelConfig &m = graph::findModel("GPT3-XL");
    const auto fwd = buildTensorParallelGraph(m, 2, 4, false);
    size_t fwd_ar = 0;
    for (const auto &node : fwd.nodes)
        if (node.kind == NodeKind::AllReduce)
            ++fwd_ar;
    EXPECT_EQ(fwd_ar, 2 * m.numLayers); // Megatron: 2 per layer.
    const auto train = buildTensorParallelGraph(m, 2, 4, true);
    size_t train_ar = 0;
    for (const auto &node : train.nodes)
        if (node.kind == NodeKind::AllReduce)
            ++train_ar;
    EXPECT_EQ(train_ar, 4 * m.numLayers); // Doubled in backward.
}

TEST(Parallel, TensorParallelRejectsIndivisibleWidth)
{
    ModelConfig m = graph::findModel("GPT2-Large"); // 20 heads.
    EXPECT_DEATH(buildTensorParallelGraph(m, 2, 3, false),
                 "heads must divide");
}

class DistributedStrategies
    : public ::testing::TestWithParam<Parallelism>
{
};

TEST_P(DistributedStrategies, GroundTruthIsPositiveOrOom)
{
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("H100-DGX");
    ServerConfig server;
    server.systemName = "H100-DGX";
    server.gpuName = "H100";
    server.numGpus = 4;
    const auto result =
        distributedTrainingMs(oracle, comms, server,
                              graph::findModel("GPT2-Large"), 4,
                              GetParam());
    EXPECT_FALSE(result.oom);
    EXPECT_GT(result.latencyMs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, DistributedStrategies,
                         ::testing::Values(Parallelism::Data,
                                           Parallelism::Tensor,
                                           Parallelism::Pipeline));

TEST(Parallel, PipelineSlowerThanDataParallelAtSmallBatch)
{
    // With one micro-batch the pipeline is almost fully serialized
    // (paper Table 8: PP ~3x DP latency).
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("H100-DGX");
    ServerConfig server;
    server.systemName = "H100-DGX";
    server.gpuName = "H100";
    server.numGpus = 4;
    const ModelConfig &m = graph::findModel("GPT2-Large");
    const auto dp = distributedTrainingMs(oracle, comms, server, m, 4,
                                          Parallelism::Data);
    const auto pp = distributedTrainingMs(oracle, comms, server, m, 4,
                                          Parallelism::Pipeline);
    EXPECT_GT(pp.latencyMs, dp.latencyMs * 1.5);
}

TEST(Parallel, OomDetectedOnSmallGpu)
{
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("T4-box");
    ServerConfig server;
    server.systemName = "T4-box";
    server.gpuName = "T4"; // 16 GB.
    server.numGpus = 4;
    const auto result = distributedTrainingMs(
        oracle, comms, server, graph::findModel("GPT3-2.7B"), 16,
        Parallelism::Data);
    EXPECT_TRUE(result.oom);
}

TEST(Parallel, PredictionTracksGroundTruth)
{
    // Roofline is crude, but the orchestration must keep prediction and
    // truth within the same order of magnitude; the integration test
    // asserts the tight NeuSight bound.
    const eval::SimulatorOracle oracle;
    const baselines::RooflinePredictor roofline;
    const SimCollectives sim_comms("A100-NVLink");
    const EstimatedCollectives est_comms("A100-NVLink", 600.0);
    ServerConfig server;
    server.systemName = "A100-NVLink";
    server.gpuName = "A100-40GB";
    server.numGpus = 4;
    const ModelConfig &m = graph::findModel("GPT2-Large");
    const auto truth = distributedTrainingMs(oracle, sim_comms, server, m,
                                             4, Parallelism::Tensor);
    const auto guess = distributedTrainingMs(roofline, est_comms, server,
                                             m, 4, Parallelism::Tensor);
    ASSERT_FALSE(truth.oom);
    ASSERT_FALSE(guess.oom);
    EXPECT_GT(guess.latencyMs, truth.latencyMs * 0.2);
    EXPECT_LT(guess.latencyMs, truth.latencyMs * 2.0);
}

TEST(MultiNode, OneNodeHasNoInterNodeCost)
{
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("H100-DGX");
    const MultiNodeConfig cfg;
    const auto &gpu = gpusim::findGpu("H100");
    const ModelConfig &m = graph::findModel("GPT3-2.7B");
    const double one = multiNodeIterationMs(oracle, comms, m, gpu, 1, cfg);
    const double four = multiNodeIterationMs(oracle, comms, m, gpu, 4, cfg);
    EXPECT_GT(one, 0.0);
    EXPECT_GT(four, one);
}

TEST(MultiNode, AllReduceCostSaturates)
{
    // Paper Table 9 shape: a big jump to hundreds of nodes, then a long
    // flat tail (ring transfer saturates at 2x payload per link).
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("H100-DGX");
    const MultiNodeConfig cfg;
    const auto &gpu = gpusim::findGpu("H100");
    const ModelConfig &m = graph::findModel("GPT3-2.7B");
    const double n1 = multiNodeIterationMs(oracle, comms, m, gpu, 1, cfg);
    const double n4 = multiNodeIterationMs(oracle, comms, m, gpu, 4, cfg);
    const double n384 =
        multiNodeIterationMs(oracle, comms, m, gpu, 384, cfg);
    const double n768 =
        multiNodeIterationMs(oracle, comms, m, gpu, 768, cfg);
    const double n3840 =
        multiNodeIterationMs(oracle, comms, m, gpu, 3840, cfg);
    EXPECT_LT(n4 - n1, n384 - n4);          // Main jump at scale.
    EXPECT_LT(n768 - n384, n384 - n4);      // Then the curve flattens.
    EXPECT_LT((n3840 - n768) / n768, 0.6);  // Long flat tail.
    EXPECT_GT(n3840, n768);
}

TEST(MultiNode, PlateauCalibratedToPaperTable9)
{
    // Paper Table 9 (GPT-3 on 8 x H100 nodes, TP-8 + DP over 100 Gbps
    // InfiniBand) reports 12028.3 / 12135.5 / 12564.6 ms at 384 / 768 /
    // 3840 nodes: a ~12 s plateau with a nearly flat tail. The default
    // fabric-contention floor is calibrated against it; this regression
    // pins both the magnitude band and the tail flatness. Predictor
    // choice barely matters at this scale — the inter-node all-reduce
    // dominates — so the simulator oracle stands in for NeuSight.
    const eval::SimulatorOracle oracle;
    const EstimatedCollectives comms("A100-NVLink", 600.0);
    const MultiNodeConfig cfg;
    const auto &gpu = gpusim::findGpu("H100");
    const ModelConfig &m = graph::findModel("GPT3-2.7B");
    const double n384 =
        multiNodeIterationMs(oracle, comms, m, gpu, 384, cfg);
    const double n768 =
        multiNodeIterationMs(oracle, comms, m, gpu, 768, cfg);
    const double n3840 =
        multiNodeIterationMs(oracle, comms, m, gpu, 3840, cfg);
    EXPECT_GT(n384, 9000.0);
    EXPECT_LT(n384, 15000.0);
    EXPECT_GT(n3840, n384);
    // Flat tail: under 10% growth across a 10x node-count increase
    // (paper: 4.5%).
    EXPECT_LT((n3840 - n768) / n768, 0.10);
}

TEST(MultiNode, StrategyNamesAreStable)
{
    EXPECT_STREQ(parallelismName(Parallelism::Data), "Data Parallel");
    EXPECT_STREQ(parallelismName(Parallelism::Tensor), "Tensor Parallel");
    EXPECT_STREQ(parallelismName(Parallelism::Pipeline),
                 "Pipeline Parallel");
    EXPECT_STREQ(pipelineScheduleName(PipelineSchedule::GPipe), "GPipe");
    EXPECT_STREQ(pipelineScheduleName(PipelineSchedule::OneFOneB), "1F1B");
    EXPECT_STREQ(pipelineScheduleName(PipelineSchedule::Interleaved1F1B),
                 "Interleaved-1F1B");
}

TEST(Hybrid, ValidateRejectsStructuralMismatches)
{
    const ModelConfig &m = graph::findModel("GPT2-Large");
    ServerConfig server;
    server.gpuName = "A100-40GB";
    server.numGpus = 8;

    HybridConfig hy;
    hy.tpDegree = 2;
    hy.ppDegree = 2;
    hy.dpDegree = 1; // 2*2*1 != 8.
    EXPECT_NE(validateHybrid(m, server, 16, hy), "");

    hy.dpDegree = 2;
    EXPECT_EQ(validateHybrid(m, server, 16, hy), "");

    // 20 heads do not split 8 ways.
    HybridConfig tp8 = hy;
    tp8.tpDegree = 8;
    tp8.ppDegree = 1;
    tp8.dpDegree = 1;
    EXPECT_NE(validateHybrid(m, server, 16, tp8), "");

    // Batch 6 does not split across 4 replicas.
    HybridConfig dp4 = hy;
    dp4.tpDegree = 2;
    dp4.ppDegree = 1;
    dp4.dpDegree = 4;
    EXPECT_NE(validateHybrid(m, server, 6, dp4), "");

    // Interleaving needs a pipeline and enough layers for the chunks.
    HybridConfig il = hy;
    il.schedule = PipelineSchedule::Interleaved1F1B;
    il.ppDegree = 1;
    il.tpDegree = 4;
    EXPECT_NE(validateHybrid(m, server, 16, il), "");

    EXPECT_DEATH(hybridTrainingMs(eval::SimulatorOracle{},
                                  SimCollectives{"x"}, server, m, 6, dp4),
                 "not divisible");
}

TEST(Hybrid, PureTensorDegreeMatchesSingleAxisPath)
{
    // tp = N, pp = dp = 1 must price exactly the graph of the pure
    // tensor-parallel forecast (the stage builder degenerates to
    // buildTensorParallelGraph by construction).
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("H100-DGX");
    ServerConfig server;
    server.systemName = "H100-DGX";
    server.gpuName = "H100";
    server.numGpus = 4;
    const ModelConfig &m = graph::findModel("GPT2-Large");
    const auto pure = distributedTrainingMs(oracle, comms, server, m, 4,
                                            Parallelism::Tensor);
    HybridConfig hy;
    hy.tpDegree = 4;
    const auto hybrid = hybridTrainingMs(oracle, comms, server, m, 4, hy);
    ASSERT_FALSE(pure.oom);
    ASSERT_FALSE(hybrid.oom);
    EXPECT_DOUBLE_EQ(hybrid.latencyMs, pure.latencyMs);
}

TEST(Hybrid, InterleavingShrinksBubbleAndGrowsStash)
{
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("H100-DGX");
    ServerConfig server;
    server.systemName = "H100-DGX";
    server.gpuName = "H100";
    server.numGpus = 4;
    const ModelConfig &m = graph::findModel("GPT2-Large");
    HybridConfig plain;
    plain.ppDegree = 4;
    plain.numMicroBatches = 8;
    plain.schedule = PipelineSchedule::OneFOneB;
    HybridConfig il = plain;
    il.schedule = PipelineSchedule::Interleaved1F1B;
    const auto a = hybridTrainingMs(oracle, comms, server, m, 8, plain);
    const auto b = hybridTrainingMs(oracle, comms, server, m, 8, il);
    ASSERT_FALSE(a.oom);
    ASSERT_FALSE(b.oom);
    EXPECT_LT(b.bubbleMs, a.bubbleMs);
    // The virtual stages stash more activations...
    EXPECT_GT(b.memoryBytes, a.memoryBytes);
    // ...and cross more chunk boundaries.
    EXPECT_GT(b.commBytes, a.commBytes);
}

TEST(Hybrid, GoldenPinsTp2Pp2Dp2)
{
    // Regression pin for the hybrid forecast: GPT2-Large at global
    // batch 16 on 8x A100-40GB under tp2 x pp2 x dp2, 4 micro-batches,
    // 1F1B — with and without activation recomputation. Ground-truth
    // oracle + SimCollectives, so any drift here is a deliberate
    // calibration change, not predictor noise. Update both constants
    // together when the cost model is retuned on purpose.
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("A100-NVLink");
    ServerConfig server;
    server.systemName = "A100-NVLink";
    server.gpuName = "A100-40GB";
    server.numGpus = 8;
    const ModelConfig &m = graph::findModel("GPT2-Large");
    HybridConfig hy;
    hy.tpDegree = 2;
    hy.ppDegree = 2;
    hy.dpDegree = 2;
    hy.numMicroBatches = 4;
    hy.schedule = PipelineSchedule::OneFOneB;
    const auto plain = hybridTrainingMs(oracle, comms, server, m, 16, hy);
    hy.recomputeActivations = true;
    const auto rec = hybridTrainingMs(oracle, comms, server, m, 16, hy);
    ASSERT_FALSE(plain.oom);
    ASSERT_FALSE(rec.oom);
    EXPECT_NEAR(plain.latencyMs, 1474.292, 1474.292 * 0.002);
    EXPECT_NEAR(rec.latencyMs, 1958.671, 1958.671 * 0.002);
    // Recomputation buys memory with latency.
    EXPECT_GT(rec.latencyMs, plain.latencyMs);
    EXPECT_LT(rec.memoryBytes, plain.memoryBytes);
}

TEST(Hybrid, SweepRanksRunnableStrategies)
{
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("H100-DGX");
    ServerConfig server;
    server.systemName = "H100-DGX";
    server.gpuName = "H100";
    server.numGpus = 4;
    const ModelConfig &m = graph::findModel("GPT2-Large");
    const auto entries = sweepStrategies(oracle, comms, server, m, 16);
    ASSERT_FALSE(entries.empty());
    const auto &gpu = gpusim::findGpu("H100");
    for (size_t i = 0; i < entries.size(); ++i) {
        EXPECT_FALSE(entries[i].result.oom);
        EXPECT_LE(entries[i].result.memoryBytes, gpu.memBytes());
        EXPECT_EQ(validateHybrid(m, server, 16, entries[i].config), "");
        if (i > 0)
            EXPECT_GE(entries[i].result.latencyMs,
                      entries[i - 1].result.latencyMs);
    }
}

TEST(PipelineSchedule, SingleMicroBatchMatchesLegacyPath)
{
    // distributedTrainingMs(Pipeline) must be exactly the M = 1 GPipe
    // configuration of the micro-batched forecaster.
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("H100-DGX");
    ServerConfig server;
    server.systemName = "H100-DGX";
    server.gpuName = "H100";
    server.numGpus = 4;
    const ModelConfig &m = graph::findModel("GPT2-Large");
    const auto legacy = distributedTrainingMs(oracle, comms, server, m, 4,
                                              Parallelism::Pipeline);
    const auto micro = pipelineTrainingMs(oracle, comms, server, m, 4,
                                          PipelineConfig{});
    ASSERT_FALSE(legacy.oom);
    EXPECT_DOUBLE_EQ(legacy.latencyMs, micro.latencyMs);
}

TEST(PipelineSchedule, MicroBatchingShrinksBubbleOverhead)
{
    // With M micro-batches the bubble fraction is (S-1)/(M+S-1): more
    // micro-batches amortize the fill/drain slots, so per-iteration
    // latency at a fixed global batch must decrease (stage work is
    // sub-linear in micro-batch size on an underutilized GPU).
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("H100-DGX");
    ServerConfig server;
    server.systemName = "H100-DGX";
    server.gpuName = "H100";
    server.numGpus = 4;
    const ModelConfig &m = graph::findModel("GPT2-Large");
    PipelineConfig one;
    one.numMicroBatches = 1;
    PipelineConfig four;
    four.numMicroBatches = 4;
    const auto m1 = pipelineTrainingMs(oracle, comms, server, m, 16, one);
    const auto m4 = pipelineTrainingMs(oracle, comms, server, m, 16, four);
    ASSERT_FALSE(m1.oom);
    ASSERT_FALSE(m4.oom);
    EXPECT_LT(m4.latencyMs, m1.latencyMs);
}

TEST(PipelineSchedule, SchedulesShareLatencyAtEqualMicroBatching)
{
    // GPipe and non-interleaved 1F1B fill the same M + S - 1 slots; the
    // forecaster models their difference as memory, not time.
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("H100-DGX");
    ServerConfig server;
    server.systemName = "H100-DGX";
    server.gpuName = "H100";
    server.numGpus = 4;
    const ModelConfig &m = graph::findModel("GPT2-Large");
    PipelineConfig gpipe;
    gpipe.numMicroBatches = 4;
    gpipe.schedule = PipelineSchedule::GPipe;
    PipelineConfig ofob = gpipe;
    ofob.schedule = PipelineSchedule::OneFOneB;
    const auto a = pipelineTrainingMs(oracle, comms, server, m, 8, gpipe);
    const auto b = pipelineTrainingMs(oracle, comms, server, m, 8, ofob);
    ASSERT_FALSE(a.oom);
    ASSERT_FALSE(b.oom);
    EXPECT_DOUBLE_EQ(a.latencyMs, b.latencyMs);
}

TEST(PipelineSchedule, OneFOneBAdmitsConfigurationsGPipeCannot)
{
    // The 1F1B stash is min(M, S) micro-batches vs GPipe's M: at high
    // micro-batch counts on a small-memory GPU, GPipe OOMs first.
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("V100-server");
    ServerConfig server;
    server.systemName = "V100-server";
    server.gpuName = "V100"; // 32 GB: the stash decides what fits.
    server.numGpus = 4;
    const ModelConfig &m = graph::findModel("GPT2-Large");
    bool found_split = false;
    for (int micro : {2, 4, 8, 16, 32}) {
        PipelineConfig gpipe;
        gpipe.numMicroBatches = micro;
        gpipe.schedule = PipelineSchedule::GPipe;
        PipelineConfig ofob = gpipe;
        ofob.schedule = PipelineSchedule::OneFOneB;
        const auto a = pipelineTrainingMs(
            oracle, comms, server, m,
            static_cast<uint64_t>(micro), gpipe);
        const auto b = pipelineTrainingMs(
            oracle, comms, server, m,
            static_cast<uint64_t>(micro), ofob);
        // 1F1B never OOMs where GPipe fits.
        if (!a.oom)
            EXPECT_FALSE(b.oom) << micro;
        if (a.oom && !b.oom)
            found_split = true;
    }
    EXPECT_TRUE(found_split)
        << "expected some micro-batch count where only 1F1B fits";
}

TEST(PipelineSchedule, LegacyPathRejectsInterleaved)
{
    // The Table-8 single-axis path models GPipe and plain 1F1B; the
    // interleaved schedule must be screened toward the hybrid
    // forecaster instead of silently pricing as plain 1F1B.
    const ModelConfig &m = graph::findModel("GPT2-Large");
    ServerConfig server;
    server.gpuName = "H100";
    server.numGpus = 4;
    PipelineConfig il;
    il.numMicroBatches = 4;
    il.schedule = PipelineSchedule::Interleaved1F1B;
    EXPECT_NE(validateStrategy(m, server, 8, Parallelism::Pipeline, il),
              "");
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("H100-DGX");
    EXPECT_DEATH(pipelineTrainingMs(oracle, comms, server, m, 8, il),
                 "interleaved");
}

TEST(PipelineSchedule, RejectsBadConfig)
{
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("X");
    ServerConfig server;
    server.gpuName = "H100";
    server.numGpus = 4;
    PipelineConfig bad;
    bad.numMicroBatches = 0;
    EXPECT_DEATH(pipelineTrainingMs(oracle, comms, server,
                                    graph::findModel("GPT2-Large"), 4,
                                    bad),
                 "micro-batch");
}

} // namespace
} // namespace neusight::dist
