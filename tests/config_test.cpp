/**
 * @file
 * Tests for the configuration substrate: the JSON parser/writer
 * (grammar coverage, escapes, error positions, round-trip property),
 * the command-line parser, and the GpuSpec / ModelConfig JSON loaders
 * used by the tools/ binaries.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/argparse.hpp"
#include "common/json.hpp"
#include "gpusim/spec_io.hpp"
#include "graph/model_io.hpp"

namespace neusight {
namespace {

using common::ArgParser;
using common::Json;

// ---------------------------------------------------------------- Json --

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(Json::parse("null").isNull());
    EXPECT_TRUE(Json::parse("true").asBool());
    EXPECT_FALSE(Json::parse("false").asBool());
    EXPECT_DOUBLE_EQ(Json::parse("42").asDouble(), 42.0);
    EXPECT_DOUBLE_EQ(Json::parse("-17.25").asDouble(), -17.25);
    EXPECT_DOUBLE_EQ(Json::parse("6.02e23").asDouble(), 6.02e23);
    EXPECT_DOUBLE_EQ(Json::parse("1E-3").asDouble(), 1e-3);
    EXPECT_EQ(Json::parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesNestedStructures)
{
    const Json doc = Json::parse(
        R"({"gpu": {"name": "H100", "sms": 132}, "batches": [1, 2, 4]})");
    EXPECT_EQ(doc.at("gpu").at("name").asString(), "H100");
    EXPECT_EQ(doc.at("gpu").at("sms").asInt(), 132);
    ASSERT_EQ(doc.at("batches").asArray().size(), 3u);
    EXPECT_EQ(doc.at("batches").asArray()[2].asInt(), 4);
}

TEST(Json, ParsesEmptyContainers)
{
    EXPECT_TRUE(Json::parse("{}").asObject().empty());
    EXPECT_TRUE(Json::parse("[]").asArray().empty());
    EXPECT_TRUE(Json::parse("  [ ]  ").asArray().empty());
}

TEST(Json, DecodesEscapes)
{
    EXPECT_EQ(Json::parse(R"("a\nb\tc")").asString(), "a\nb\tc");
    EXPECT_EQ(Json::parse(R"("quote \" backslash \\")").asString(),
              "quote \" backslash \\");
    EXPECT_EQ(Json::parse(R"("A")").asString(), "A");
    // Two-byte and three-byte UTF-8.
    EXPECT_EQ(Json::parse(R"("é")").asString(), "\xc3\xa9");
    EXPECT_EQ(Json::parse(R"("€")").asString(), "\xe2\x82\xac");
    // Surrogate pair -> 4-byte UTF-8 (U+1F600).
    EXPECT_EQ(Json::parse(R"("😀")").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "nul", "tru", "01",
          "1.", "1e", "\"unterminated", "\"bad\\q\"", "[1] garbage",
          "{\"a\":1,}", "'single'", "\"\\ud800\""}) {
        EXPECT_THROW(Json::parse(bad), std::runtime_error) << bad;
    }
}

TEST(Json, ErrorsCarryLineAndColumn)
{
    try {
        Json::parse("{\n  \"a\": 1,\n  \"b\": oops\n}");
        FAIL() << "expected parse error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
            << e.what();
    }
}

TEST(Json, AccessorsRejectWrongTypes)
{
    const Json num = Json::parse("3.5");
    EXPECT_THROW(num.asString(), std::runtime_error);
    EXPECT_THROW(num.asBool(), std::runtime_error);
    EXPECT_THROW(num.asArray(), std::runtime_error);
    EXPECT_THROW(num.asInt(), std::runtime_error); // Not integral.
    EXPECT_THROW(num.at("key"), std::runtime_error);
    EXPECT_NO_THROW(Json::parse("3").asInt());
}

TEST(Json, OptionalAccessorsFallBack)
{
    const Json doc = Json::parse(R"({"present": 2.5, "flag": true})");
    EXPECT_DOUBLE_EQ(doc.numberOr("present", 0.0), 2.5);
    EXPECT_DOUBLE_EQ(doc.numberOr("absent", 7.0), 7.0);
    EXPECT_TRUE(doc.boolOr("flag", false));
    EXPECT_FALSE(doc.boolOr("absent", false));
    EXPECT_EQ(doc.stringOr("absent", "dflt"), "dflt");
    EXPECT_FALSE(doc.has("absent"));
    EXPECT_TRUE(doc.has("present"));
}

TEST(Json, SetOverwritesAndAppends)
{
    Json doc;
    doc.set("a", 1);
    doc.set("b", "two");
    doc.set("a", 3); // Overwrite, no duplicate key.
    EXPECT_EQ(doc.asObject().size(), 2u);
    EXPECT_EQ(doc.at("a").asInt(), 3);
}

TEST(Json, DumpRoundTripsStructurally)
{
    const char *text =
        R"({"name":"L4\n","values":[1,2.5,true,null],"nested":{"x":-3}})";
    const Json doc = Json::parse(text);
    for (int indent : {0, 2, 4}) {
        const Json again = Json::parse(doc.dump(indent));
        EXPECT_TRUE(again == doc) << "indent=" << indent;
    }
}

TEST(Json, DumpKeepsIntegersIntegral)
{
    Json doc;
    doc.set("sms", 132);
    doc.set("bw", 3430.5);
    const std::string text = doc.dump(0);
    EXPECT_NE(text.find("\"sms\":132"), std::string::npos) << text;
    EXPECT_NE(text.find("3430.5"), std::string::npos) << text;
}

TEST(Json, ParseFileReportsMissingFile)
{
    EXPECT_THROW(Json::parseFile("/nonexistent/nope.json"),
                 std::runtime_error);
}

TEST(Json, FileRoundTrip)
{
    const std::string path = "/tmp/neusight_json_roundtrip.json";
    Json doc;
    doc.set("alpha", 0.93);
    doc.set("ops", Json(Json::Array{Json("bmm"), Json("linear")}));
    {
        std::ofstream out(path);
        out << doc.dump();
    }
    EXPECT_TRUE(Json::parseFile(path) == doc);
    std::remove(path.c_str());
}

// ------------------------------------------------------------ ArgParser --

ArgParser
makeParser()
{
    ArgParser args("tool", "test parser");
    args.addString("model", "GPT3-XL", "model name");
    args.addInt("batch", 8, "batch size");
    args.addDouble("scale", 1.0, "scale factor");
    args.addFlag("fuse", "enable fusion");
    return args;
}

TEST(ArgParse, DefaultsApplyWithoutArguments)
{
    ArgParser args = makeParser();
    const char *argv[] = {"tool"};
    ASSERT_TRUE(args.parse(1, argv));
    EXPECT_EQ(args.getString("model"), "GPT3-XL");
    EXPECT_EQ(args.getInt("batch"), 8);
    EXPECT_DOUBLE_EQ(args.getDouble("scale"), 1.0);
    EXPECT_FALSE(args.getFlag("fuse"));
    EXPECT_FALSE(args.given("model"));
}

TEST(ArgParse, ParsesTypedValuesAndFlags)
{
    ArgParser args = makeParser();
    const char *argv[] = {"tool", "--model", "BERT-Large", "--batch", "16",
                          "--scale", "0.25", "--fuse"};
    ASSERT_TRUE(args.parse(8, argv));
    EXPECT_EQ(args.getString("model"), "BERT-Large");
    EXPECT_EQ(args.getInt("batch"), 16);
    EXPECT_DOUBLE_EQ(args.getDouble("scale"), 0.25);
    EXPECT_TRUE(args.getFlag("fuse"));
    EXPECT_TRUE(args.given("batch"));
}

TEST(ArgParse, HelpShortCircuits)
{
    ArgParser args = makeParser();
    const char *argv[] = {"tool", "--help"};
    ::testing::internal::CaptureStdout();
    EXPECT_FALSE(args.parse(2, argv));
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("--model"), std::string::npos);
    EXPECT_NE(out.find("default: GPT3-XL"), std::string::npos);
}

TEST(ArgParse, RejectsBadInput)
{
    {
        ArgParser args = makeParser();
        const char *argv[] = {"tool", "--unknown", "1"};
        EXPECT_THROW(args.parse(3, argv), std::runtime_error);
    }
    {
        ArgParser args = makeParser();
        const char *argv[] = {"tool", "--batch"};
        EXPECT_THROW(args.parse(2, argv), std::runtime_error);
    }
    {
        ArgParser args = makeParser();
        const char *argv[] = {"tool", "--batch", "eight"};
        EXPECT_THROW(args.parse(3, argv), std::runtime_error);
    }
    {
        ArgParser args = makeParser();
        const char *argv[] = {"tool", "--scale", "1.5x"};
        EXPECT_THROW(args.parse(3, argv), std::runtime_error);
    }
    {
        ArgParser args = makeParser();
        const char *argv[] = {"tool", "positional"};
        EXPECT_THROW(args.parse(2, argv), std::runtime_error);
    }
}

// --------------------------------------------------------------- SpecIo --

Json
validSpecJson()
{
    return Json::parse(R"({
        "name": "B200", "vendor": "nvidia", "year": 2025,
        "peak_fp32_tflops": 80.0, "fp16_tensor_tflops": 2250.0,
        "memory_size_gb": 192.0, "memory_bw_gbps": 8000.0,
        "num_sms": 160, "l2_cache_mb": 64.0,
        "interconnect_gbps": 1800.0
    })");
}

TEST(SpecIo, ParsesAnnouncedSpecSheet)
{
    const gpusim::GpuSpec spec = gpusim::gpuSpecFromJson(validSpecJson());
    EXPECT_EQ(spec.name, "B200");
    EXPECT_EQ(spec.vendor, gpusim::Vendor::Nvidia);
    EXPECT_DOUBLE_EQ(spec.peakFp32Tflops, 80.0);
    // Matrix peak defaults to the vector peak on NVIDIA parts.
    EXPECT_DOUBLE_EQ(spec.matrixFp32Tflops, 80.0);
    EXPECT_DOUBLE_EQ(spec.fp16TensorTflops, 2250.0);
    EXPECT_EQ(spec.numSms, 160);
    EXPECT_FALSE(spec.inTrainingSet);
}

TEST(SpecIo, RoundTripsEveryDatabaseGpu)
{
    for (const gpusim::GpuSpec &spec : gpusim::deviceDatabase()) {
        const gpusim::GpuSpec again =
            gpusim::gpuSpecFromJson(gpusim::gpuSpecToJson(spec));
        EXPECT_EQ(again.name, spec.name);
        EXPECT_EQ(again.vendor, spec.vendor);
        EXPECT_DOUBLE_EQ(again.peakFp32Tflops, spec.peakFp32Tflops);
        EXPECT_DOUBLE_EQ(again.matrixFp32Tflops, spec.matrixFp32Tflops);
        EXPECT_DOUBLE_EQ(again.memoryBwGBps, spec.memoryBwGBps);
        EXPECT_EQ(again.numSms, spec.numSms);
        EXPECT_DOUBLE_EQ(again.l2CacheMB, spec.l2CacheMB);
        EXPECT_EQ(again.inTrainingSet, spec.inTrainingSet);
    }
}

TEST(SpecIo, RejectsNonPhysicalValues)
{
    for (const char *key :
         {"peak_fp32_tflops", "memory_size_gb", "memory_bw_gbps", "num_sms",
          "l2_cache_mb"}) {
        Json bad = validSpecJson();
        bad.set(key, 0);
        EXPECT_THROW(gpusim::gpuSpecFromJson(bad), std::runtime_error)
            << key;
    }
    Json bad_vendor = validSpecJson();
    bad_vendor.set("vendor", "intel");
    EXPECT_THROW(gpusim::gpuSpecFromJson(bad_vendor), std::runtime_error);
}

TEST(SpecIo, RejectsMissingRequiredKey)
{
    Json missing;
    missing.set("name", "X");
    EXPECT_THROW(gpusim::gpuSpecFromJson(missing), std::runtime_error);
}

TEST(SpecIo, FileRoundTripAndResolve)
{
    const std::string path = "/tmp/neusight_specs.json";
    std::vector<gpusim::GpuSpec> specs = {
        gpusim::gpuSpecFromJson(validSpecJson()), gpusim::findGpu("T4")};
    gpusim::saveGpuSpecs(specs, path);
    const auto loaded = gpusim::loadGpuSpecs(path);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].name, "B200");
    EXPECT_EQ(loaded[1].name, "T4");
    // resolveGpu prefers the database, falls back to a file path.
    EXPECT_EQ(gpusim::resolveGpu("H100").name, "H100");
    EXPECT_EQ(gpusim::resolveGpu(path).name, "B200");
    EXPECT_THROW(gpusim::resolveGpu("/nonexistent.json"),
                 std::runtime_error);
    std::remove(path.c_str());
}

// -------------------------------------------------------------- ModelIo --

Json
validModelJson()
{
    return Json::parse(R"({
        "name": "LLaMA-7B-ish", "num_layers": 32, "hidden": 4096,
        "heads": 32, "seq": 2048, "vocab": 32000
    })");
}

TEST(ModelIo, ParsesCustomArchitecture)
{
    const graph::ModelConfig config =
        graph::modelConfigFromJson(validModelJson());
    EXPECT_EQ(config.name, "LLaMA-7B-ish");
    EXPECT_EQ(config.numLayers, 32u);
    EXPECT_EQ(config.hidden, 4096u);
    EXPECT_EQ(config.ffWidth(), 4u * 4096); // Default 4*hidden.
    EXPECT_EQ(config.numExperts, 1u);
    EXPECT_FALSE(config.encoderOnly);
}

TEST(ModelIo, RoundTripsEveryPaperWorkload)
{
    for (const graph::ModelConfig &config : graph::paperWorkloads()) {
        const graph::ModelConfig again =
            graph::modelConfigFromJson(graph::modelConfigToJson(config));
        EXPECT_EQ(again.name, config.name);
        EXPECT_EQ(again.numLayers, config.numLayers);
        EXPECT_EQ(again.hidden, config.hidden);
        EXPECT_EQ(again.heads, config.heads);
        EXPECT_EQ(again.seq, config.seq);
        EXPECT_EQ(again.vocab, config.vocab);
        EXPECT_EQ(again.numExperts, config.numExperts);
        EXPECT_EQ(again.encoderOnly, config.encoderOnly);
        EXPECT_DOUBLE_EQ(again.parameterCount(), config.parameterCount());
    }
}

TEST(ModelIo, RejectsInconsistentDimensions)
{
    Json bad = validModelJson();
    bad.set("heads", 30); // 4096 % 30 != 0.
    EXPECT_THROW(graph::modelConfigFromJson(bad), std::runtime_error);
    Json zero = validModelJson();
    zero.set("num_layers", 0);
    EXPECT_THROW(graph::modelConfigFromJson(zero), std::runtime_error);
}

TEST(ModelIo, LoadedConfigBuildsAGraph)
{
    const std::string path = "/tmp/neusight_model.json";
    {
        std::ofstream out(path);
        out << validModelJson().dump();
    }
    const graph::ModelConfig config = graph::resolveModel(path);
    const graph::KernelGraph g = graph::buildInferenceGraph(config, 2);
    EXPECT_GT(g.computeNodeCount(), 32u * 10);
    EXPECT_GT(g.totalFlops(), 1e12);
    // Table-5 names still resolve from the built-in set.
    EXPECT_EQ(graph::resolveModel("GPT2-Large").numLayers, 36u);
    std::remove(path.c_str());
}

/** Round-trip property over a sweep of generated JSON documents. */
class JsonRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(JsonRoundTrip, ParseDumpParseIsIdentity)
{
    const int seed = GetParam();
    // Deterministically build a nested document from the seed.
    Json doc;
    doc.set("seed", seed);
    doc.set("label", "case-" + std::to_string(seed));
    Json values;
    for (int i = 0; i < seed % 7 + 1; ++i)
        values.push(Json(seed * 0.125 + i));
    doc.set("values", std::move(values));
    Json nested;
    nested.set("flag", seed % 2 == 0);
    nested.set("none", nullptr);
    doc.set("nested", std::move(nested));

    const Json once = Json::parse(doc.dump(0));
    const Json twice = Json::parse(once.dump(4));
    EXPECT_TRUE(once == doc);
    EXPECT_TRUE(twice == doc);
}

INSTANTIATE_TEST_SUITE_P(Sweep, JsonRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace neusight
