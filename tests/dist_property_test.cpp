/**
 * @file
 * Property tests for the distributed layer: invariants that must hold
 * across randomized (tp, pp, dp, micro-batch, schedule, recompute)
 * configurations, not just the hand-picked points of dist_test. Every
 * stream is seeded, so failures reproduce deterministically.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "dist/parallel.hpp"
#include "eval/oracle.hpp"

namespace neusight::dist {
namespace {

using graph::ModelConfig;

/** Models whose head/hidden/ff widths all divide by 1, 2, and 4. */
const ModelConfig &
randomModel(Rng &rng)
{
    static const char *names[] = {"GPT2-Large", "GPT3-XL", "GPT3-2.7B"};
    return graph::findModel(
        names[rng.uniformInt(0, 2)]);
}

/** A random structurally-valid hybrid strategy for @p model. */
HybridConfig
randomHybrid(Rng &rng, const ModelConfig &model)
{
    static const int degrees[] = {1, 2, 4};
    HybridConfig hy;
    hy.tpDegree = degrees[rng.uniformInt(0, 2)];
    hy.ppDegree = degrees[rng.uniformInt(0, 2)];
    hy.dpDegree = degrees[rng.uniformInt(0, 1)];
    hy.numMicroBatches =
        hy.ppDegree > 1 ? static_cast<int>(rng.uniformInt(1, 4)) : 1;
    switch (rng.uniformInt(0, 2)) {
      case 0:
        hy.schedule = PipelineSchedule::GPipe;
        break;
      case 1:
        hy.schedule = PipelineSchedule::OneFOneB;
        break;
      default:
        hy.schedule = hy.ppDegree > 1
                          ? PipelineSchedule::Interleaved1F1B
                          : PipelineSchedule::OneFOneB;
        break;
    }
    (void)model;
    return hy;
}

/** A server sized for @p hy with plenty of memory headroom. */
ServerConfig
serverFor(const HybridConfig &hy, const char *gpu = "H100")
{
    ServerConfig server;
    server.gpuName = gpu;
    server.numGpus = hy.totalGpus();
    return server;
}

TEST(DistProperty, ParameterBytesConservedUnderAnySplit)
{
    // Summing the per-GPU parameter count over the (stage, tp-rank)
    // grid must recover the model's total parameters exactly, plus one
    // extra copy of the replicated embedding/head tensors per
    // additional TP rank. DP replicates whole grids and never changes
    // the per-GPU count.
    Rng rng(2025);
    for (int trial = 0; trial < 50; ++trial) {
        const ModelConfig &m = randomModel(rng);
        const int tp = static_cast<int>(rng.uniformInt(1, 4));
        if (m.heads % static_cast<uint64_t>(tp) != 0 ||
            m.hidden % static_cast<uint64_t>(tp) != 0 ||
            m.ffWidth() % static_cast<uint64_t>(tp) != 0)
            continue;
        const int pp = static_cast<int>(rng.uniformInt(
            1, static_cast<int64_t>(std::min<uint64_t>(8, m.numLayers))));
        double grid_total = 0.0;
        for (int s = 0; s < pp; ++s)
            grid_total +=
                static_cast<double>(tp) *
                hybridStageParameterCount(m, s, pp, tp);
        const double replicated = graph::embeddingParameterCount(m) +
                                  graph::headParameterCount(m);
        const double expected =
            m.parameterCount() + static_cast<double>(tp - 1) * replicated;
        EXPECT_NEAR(grid_total, expected, expected * 1e-12)
            << m.name << " tp" << tp << " pp" << pp;
    }
}

TEST(DistProperty, CommVolumeMonotoneInDpDegree)
{
    // At a fixed per-replica batch and micro-batch split, raising the
    // data-parallel degree can only add communication: the TP and
    // pipeline payloads are unchanged and the gradient all-reduce
    // appears (and never shrinks) once dp > 1.
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("H100-DGX");
    Rng rng(77);
    for (int trial = 0; trial < 12; ++trial) {
        const ModelConfig &m = graph::findModel(
            trial % 2 ? "GPT2-Large" : "GPT3-XL");
        HybridConfig hy;
        hy.tpDegree = static_cast<int>(rng.uniformInt(1, 2));
        hy.ppDegree = static_cast<int>(rng.uniformInt(1, 2));
        // Checkpointing keeps every point of the ladder inside the OOM
        // screen; it adds only replayed forward all-reduces, which are
        // as dp-independent as the rest of the TP payload.
        hy.recomputeActivations = true;
        hy.numMicroBatches =
            hy.ppDegree > 1 ? static_cast<int>(rng.uniformInt(1, 2)) : 1;
        const uint64_t per_replica =
            static_cast<uint64_t>(hy.numMicroBatches) *
            static_cast<uint64_t>(rng.uniformInt(1, 2));
        double prev = -1.0;
        for (int dp : {1, 2, 4}) {
            hy.dpDegree = dp;
            const ServerConfig server = serverFor(hy);
            const uint64_t global = per_replica * dp;
            ASSERT_EQ(validateHybrid(m, server, global, hy), "");
            const auto r =
                hybridTrainingMs(oracle, comms, server, m, global, hy);
            ASSERT_FALSE(r.oom) << m.name << " dp" << dp;
            EXPECT_GE(r.commBytes, prev)
                << m.name << " " << hy.describe();
            prev = r.commBytes;
        }
    }
}

TEST(DistProperty, BubbleOrderingAcrossSchedules)
{
    // At equal micro-batching, the pipeline bubble obeys
    // interleaved-1F1B <= plain 1F1B <= GPipe: interleaving divides the
    // fill/drain cost by the virtual-stage count, and GPipe/1F1B fill
    // the same slots (they differ in memory, not time).
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("H100-DGX");
    Rng rng(4242);
    int compared = 0;
    for (int trial = 0; trial < 10; ++trial) {
        const ModelConfig &m = randomModel(rng);
        HybridConfig hy;
        hy.tpDegree = static_cast<int>(rng.uniformInt(1, 2));
        hy.ppDegree = 2 * static_cast<int>(rng.uniformInt(1, 2));
        hy.numMicroBatches = static_cast<int>(rng.uniformInt(1, 8));
        // Checkpointing keeps GPipe's full stash inside the screen, so
        // no schedule drops out of the three-way comparison.
        hy.recomputeActivations = true;
        const ServerConfig server = serverFor(hy);
        const uint64_t global =
            static_cast<uint64_t>(hy.numMicroBatches) * 2;

        hy.schedule = PipelineSchedule::GPipe;
        const auto gpipe =
            hybridTrainingMs(oracle, comms, server, m, global, hy);
        hy.schedule = PipelineSchedule::OneFOneB;
        const auto plain =
            hybridTrainingMs(oracle, comms, server, m, global, hy);
        hy.schedule = PipelineSchedule::Interleaved1F1B;
        const auto il =
            hybridTrainingMs(oracle, comms, server, m, global, hy);
        if (gpipe.oom || plain.oom || il.oom)
            continue;
        ++compared;
        EXPECT_LE(il.bubbleMs, plain.bubbleMs * (1.0 + 1e-12))
            << m.name << " " << hy.describe();
        EXPECT_LE(plain.bubbleMs, gpipe.bubbleMs * (1.0 + 1e-12))
            << m.name << " " << hy.describe();
    }
    EXPECT_GT(compared, 0) << "every trial fell out of the OOM screen";
}

TEST(DistProperty, RecomputationNeverIncreasesForecastMemory)
{
    // Checkpointing stashes strictly less per layer than full
    // activation retention, for every stage, schedule, and TP degree —
    // and it always costs latency when both variants fit.
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("H100-DGX");
    Rng rng(99);
    for (int trial = 0; trial < 25; ++trial) {
        const ModelConfig &m = randomModel(rng);
        HybridConfig plain = randomHybrid(rng, m);
        if (!validateHybrid(m, serverFor(plain),
                            static_cast<uint64_t>(plain.dpDegree) *
                                plain.numMicroBatches * 2,
                            plain)
                 .empty())
            continue;
        HybridConfig rec = plain;
        rec.recomputeActivations = true;
        const uint64_t micro = 2;
        for (int s = 0; s < plain.ppDegree; ++s)
            EXPECT_LE(hybridStageMemoryBytes(m, micro, s, rec),
                      hybridStageMemoryBytes(m, micro, s, plain))
                << m.name << " " << plain.describe() << " stage " << s;

        const ServerConfig server = serverFor(plain);
        const uint64_t global = static_cast<uint64_t>(plain.dpDegree) *
                                plain.numMicroBatches * micro;
        const auto a =
            hybridTrainingMs(oracle, comms, server, m, global, plain);
        const auto b =
            hybridTrainingMs(oracle, comms, server, m, global, rec);
        EXPECT_LE(b.memoryBytes, a.memoryBytes);
        if (!a.oom && !b.oom)
            EXPECT_GE(b.latencyMs, a.latencyMs);
    }
}

TEST(DistProperty, OomScreenMonotoneInGpuMemory)
{
    // A configuration that fits on a GPU always fits on an otherwise
    // identical GPU with more memory.
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("H100-DGX");
    Rng rng(1313);
    for (int trial = 0; trial < 20; ++trial) {
        const ModelConfig &m = randomModel(rng);
        const HybridConfig hy = randomHybrid(rng, m);
        const uint64_t global = static_cast<uint64_t>(hy.dpDegree) *
                                static_cast<uint64_t>(hy.numMicroBatches);
        gpusim::GpuSpec small = gpusim::findGpu("H100");
        small.name = "H100-quarter-mem";
        small.memorySizeGB /= 4.0;
        ServerConfig small_server = serverFor(hy);
        small_server.setGpu(small);
        ServerConfig big_server = serverFor(hy);
        if (!validateHybrid(m, big_server, global, hy).empty())
            continue;
        const auto on_small =
            hybridTrainingMs(oracle, comms, small_server, m, global, hy);
        const auto on_big =
            hybridTrainingMs(oracle, comms, big_server, m, global, hy);
        if (!on_small.oom)
            EXPECT_FALSE(on_big.oom)
                << m.name << " " << hy.describe();
        // The footprint model itself is independent of the GPU.
        EXPECT_DOUBLE_EQ(on_small.memoryBytes, on_big.memoryBytes);
    }
}

TEST(DistProperty, SweepWinnerBeatsEverySingleAxisBaseline)
{
    // The acceptance case: GPT3-2.7B on 8x A100-40GB is memory-bound
    // (pure DP cannot hold replicated optimizer state in 40 GB) and
    // comm-heavy at tp8 (replicated embedding/head plus 8-way per-layer
    // all-reduces), so the sweep must surface a genuinely hybrid winner
    // that beats every single-axis plan it was compared against — and
    // the ranking must be sorted. (On 4 GPUs pure TP with gradient
    // accumulation runs the hybrids to a near-tie; the structural
    // hybrid advantage — small-group collectives plus overlapped DP —
    // compounds with the GPU count.)
    const eval::SimulatorOracle oracle;
    const SimCollectives comms("A100-NVLink");
    ServerConfig server;
    server.systemName = "A100-NVLink";
    server.gpuName = "A100-40GB";
    server.numGpus = 8;
    const ModelConfig &m = graph::findModel("GPT3-2.7B");
    const auto entries = sweepStrategies(oracle, comms, server, m, 32);
    ASSERT_FALSE(entries.empty());
    for (size_t i = 1; i < entries.size(); ++i)
        EXPECT_GE(entries[i].result.latencyMs,
                  entries[i - 1].result.latencyMs);

    const auto &winner = entries.front();
    EXPECT_GE(winner.config.activeAxes(), 2)
        << "expected a hybrid winner, got " << winner.config.describe();
    bool saw_single_axis = false;
    for (const auto &e : entries) {
        if (e.config.activeAxes() > 1)
            continue;
        saw_single_axis = true;
        EXPECT_LT(winner.result.latencyMs, e.result.latencyMs)
            << "single-axis " << e.config.describe() << " beats hybrid "
            << winner.config.describe();
    }
    EXPECT_TRUE(saw_single_axis)
        << "sweep produced no single-axis baseline to compare against";
    // Pure data parallelism must have been screened out by memory: 16
    // bytes of optimizer state per parameter cannot replicate onto a
    // 40 GB card, with or without recomputation.
    for (const auto &e : entries)
        EXPECT_FALSE(e.config.tpDegree == 1 && e.config.ppDegree == 1)
            << "pure DP should not fit: " << e.config.describe();
}

} // namespace
} // namespace neusight::dist
