/**
 * @file
 * Unit and property tests for the Matrix kernels, including parameterized
 * GEMM-vs-naive-reference sweeps and layout-variant consistency.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace neusight {
namespace {

Matrix
randomMatrix(size_t rows, size_t cols, Rng &rng)
{
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i)
        m.raw()[i] = rng.normal();
    return m;
}

Matrix
naiveMatmul(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < b.cols(); ++j)
            for (size_t p = 0; p < a.cols(); ++p)
                c.at(i, j) += a.at(i, p) * b.at(p, j);
    return c;
}

TEST(Matrix, ConstructionAndFill)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    EXPECT_DOUBLE_EQ(m.sum(), 0.0);
    m.fill(2.0);
    EXPECT_DOUBLE_EQ(m.sum(), 12.0);
    m.setZero();
    EXPECT_DOUBLE_EQ(m.sum(), 0.0);
}

TEST(Matrix, FromRows)
{
    const Matrix m = Matrix::fromRows({{1, 2}, {3, 4}});
    EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
}

TEST(Matrix, ApplyMapsElementwise)
{
    Matrix m = Matrix::fromRows({{1, -2}, {3, -4}});
    m.apply([](double v) { return v * v; });
    EXPECT_TRUE(m.allClose(Matrix::fromRows({{1, 4}, {9, 16}})));
}

TEST(Matrix, AllCloseShapes)
{
    EXPECT_FALSE(Matrix(2, 2).allClose(Matrix(2, 3)));
    Matrix a(2, 2, 1.0);
    Matrix b(2, 2, 1.0 + 1e-12);
    EXPECT_TRUE(a.allClose(b, 1e-9));
    EXPECT_FALSE(a.allClose(Matrix(2, 2, 1.1), 1e-9));
}

/** GEMM sweep over assorted shapes including degenerate ones. */
class MatmulShapes
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>>
{
};

TEST_P(MatmulShapes, MatchesNaiveReference)
{
    const auto [m, k, n] = GetParam();
    Rng rng(m * 10007 + k * 101 + n);
    const Matrix a = randomMatrix(m, k, rng);
    const Matrix b = randomMatrix(k, n, rng);
    EXPECT_TRUE(matmul(a, b).allClose(naiveMatmul(a, b), 1e-9));
}

TEST_P(MatmulShapes, LayoutVariantsAgree)
{
    const auto [m, k, n] = GetParam();
    Rng rng(m * 7919 + k * 31 + n);
    const Matrix a = randomMatrix(m, k, rng);
    const Matrix b = randomMatrix(k, n, rng);
    const Matrix ref = matmul(a, b);
    // A * B == A * (B^T)^T via matmulNT.
    EXPECT_TRUE(matmulNT(a, transpose(b)).allClose(ref, 1e-9));
    // A * B == (A^T)^T * B via matmulTN.
    EXPECT_TRUE(matmulTN(transpose(a), b).allClose(ref, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 5, 3),
                      std::make_tuple(4, 1, 4), std::make_tuple(3, 7, 2),
                      std::make_tuple(8, 8, 8), std::make_tuple(17, 9, 13),
                      std::make_tuple(33, 65, 17),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(128, 3, 128)));

TEST(Matrix, ElementwiseOps)
{
    const Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    const Matrix b = Matrix::fromRows({{5, 6}, {7, 8}});
    EXPECT_TRUE(add(a, b).allClose(Matrix::fromRows({{6, 8}, {10, 12}})));
    EXPECT_TRUE(sub(b, a).allClose(Matrix::fromRows({{4, 4}, {4, 4}})));
    EXPECT_TRUE(mul(a, b).allClose(Matrix::fromRows({{5, 12}, {21, 32}})));
    EXPECT_TRUE(scale(a, 2.0).allClose(Matrix::fromRows({{2, 4}, {6, 8}})));
}

TEST(Matrix, AddRowBroadcast)
{
    const Matrix x = Matrix::fromRows({{1, 2}, {3, 4}});
    const Matrix bias = Matrix::fromRows({{10, 20}});
    EXPECT_TRUE(addRowBroadcast(x, bias).allClose(
        Matrix::fromRows({{11, 22}, {13, 24}})));
}

TEST(Matrix, ColSum)
{
    const Matrix x = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    EXPECT_TRUE(colSum(x).allClose(Matrix::fromRows({{9, 12}})));
}

TEST(Matrix, TransposeInvolution)
{
    Rng rng(5);
    const Matrix x = randomMatrix(7, 3, rng);
    EXPECT_TRUE(transpose(transpose(x)).allClose(x));
    EXPECT_EQ(transpose(x).rows(), 3u);
    EXPECT_EQ(transpose(x).cols(), 7u);
}

TEST(Matrix, InPlaceOps)
{
    Matrix a = Matrix::fromRows({{1, 2}});
    addInPlace(a, Matrix::fromRows({{3, 4}}));
    EXPECT_TRUE(a.allClose(Matrix::fromRows({{4, 6}})));
    axpyInPlace(a, -2.0, Matrix::fromRows({{1, 1}}));
    EXPECT_TRUE(a.allClose(Matrix::fromRows({{2, 4}})));
}

TEST(Matrix, MatmulAssociativityProperty)
{
    Rng rng(9);
    const Matrix a = randomMatrix(5, 6, rng);
    const Matrix b = randomMatrix(6, 7, rng);
    const Matrix c = randomMatrix(7, 4, rng);
    EXPECT_TRUE(
        matmul(matmul(a, b), c).allClose(matmul(a, matmul(b, c)), 1e-8));
}

TEST(Matrix, MatmulDistributivityProperty)
{
    Rng rng(13);
    const Matrix a = randomMatrix(4, 5, rng);
    const Matrix b = randomMatrix(5, 3, rng);
    const Matrix c = randomMatrix(5, 3, rng);
    EXPECT_TRUE(matmul(a, add(b, c)).allClose(
        add(matmul(a, b), matmul(a, c)), 1e-9));
}

} // namespace
} // namespace neusight
