/**
 * @file
 * Branch-and-bound sweep equivalence: the pruned, memoized, parallel
 * sweepStrategies must return the identical winner (and top-keepTop
 * ranking prefix) as the exhaustive escape hatch, on both Table-8 grids
 * (GPT2-Large and GPT3-2.7B), while provably doing less work. Also
 * pins that the StagePriceMemo and the thread pool do not change any
 * forecast.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dist/parallel.hpp"
#include "eval/oracle.hpp"
#include "graph/models.hpp"

namespace neusight::dist {
namespace {

using graph::ModelConfig;

bool
sameConfig(const HybridConfig &a, const HybridConfig &b)
{
    return a.tpDegree == b.tpDegree && a.ppDegree == b.ppDegree &&
           a.dpDegree == b.dpDegree &&
           a.numMicroBatches == b.numMicroBatches &&
           a.schedule == b.schedule &&
           a.recomputeActivations == b.recomputeActivations;
}

ServerConfig
a100x8()
{
    ServerConfig server;
    server.systemName = "A100-NVLink";
    server.gpuName = "A100-40GB";
    server.numGpus = 8;
    return server;
}

ServerConfig
h100x4()
{
    ServerConfig server;
    server.systemName = "H100-DGX";
    server.gpuName = "H100";
    server.numGpus = 4;
    return server;
}

/**
 * Run the pruned default and the exhaustive escape hatch on one grid
 * and require the identical winner and top-keepTop ranking prefix,
 * with bound/memo/thread bookkeeping showing real savings.
 */
void
expectPrunedMatchesExhaustive(const ServerConfig &server,
                              const std::string &model_name,
                              uint64_t global_batch)
{
    const eval::SimulatorOracle oracle;
    const SimCollectives comms(server.systemName);
    const ModelConfig &m = graph::findModel(model_name);

    SweepOptions exhaustive;
    exhaustive.exhaustive = true;
    SweepStats ex_stats;
    const auto full = sweepStrategies(oracle, comms, server, m,
                                      global_batch, exhaustive, &ex_stats);

    SweepOptions pruned; // Defaults: branch-and-bound + memo + threads.
    SweepStats pr_stats;
    const auto cut = sweepStrategies(oracle, comms, server, m,
                                     global_batch, pruned, &pr_stats);

    ASSERT_FALSE(full.empty());
    ASSERT_FALSE(cut.empty());
    ASSERT_LE(cut.size(), full.size());

    // Identical winner, identical forecast — and the whole prefix the
    // pruning contract guarantees (keepTop deep).
    const size_t prefix = std::min<size_t>(
        {static_cast<size_t>(pruned.keepTop), full.size(), cut.size()});
    for (size_t i = 0; i < prefix; ++i) {
        EXPECT_TRUE(sameConfig(full[i].config, cut[i].config))
            << "rank " << i + 1 << ": exhaustive "
            << full[i].config.describe() << " m"
            << full[i].config.numMicroBatches << " vs pruned "
            << cut[i].config.describe() << " m"
            << cut[i].config.numMicroBatches;
        EXPECT_DOUBLE_EQ(full[i].result.latencyMs,
                         cut[i].result.latencyMs)
            << "rank " << i + 1;
    }

    // The single-axis baselines survive pruning by policy.
    const SweepEntry *full_single = bestSingleAxisEntry(full);
    const SweepEntry *cut_single = bestSingleAxisEntry(cut);
    ASSERT_EQ(full_single != nullptr, cut_single != nullptr);
    if (full_single != nullptr) {
        EXPECT_TRUE(sameConfig(full_single->config, cut_single->config));
        EXPECT_DOUBLE_EQ(full_single->result.latencyMs,
                         cut_single->result.latencyMs);
    }

    // The bound must have done real work on multi-factorization grids,
    // and the memo must have been hit.
    EXPECT_EQ(ex_stats.prunedFactorizations, 0u);
    EXPECT_LE(pr_stats.evaluatedPoints, ex_stats.evaluatedPoints);
    EXPECT_GT(pr_stats.stagePriceHits, 0u);
}

TEST(SweepPrune, MatchesExhaustiveOnGpt2LargeGrid)
{
    expectPrunedMatchesExhaustive(h100x4(), "GPT2-Large", 16);
}

TEST(SweepPrune, MatchesExhaustiveOnGpt3Flagship)
{
    expectPrunedMatchesExhaustive(a100x8(), "GPT3-2.7B", 32);
}

TEST(SweepPrune, BoundActuallyPrunesDeepMicroGrids)
{
    // Where the per-micro-row bound bites: a comm-heavy grid (the
    // smaller GPT2-Large on 8 GPUs) whose deep micro-batch rows pay
    // wave-quantization and collective costs the winner provably
    // avoids. The bound must eliminate work, not just break even — and
    // the ranked prefix must still match the exhaustive space (checked
    // here at full depth against the separate equivalence tests).
    const eval::SimulatorOracle oracle;
    const ServerConfig server = a100x8();
    const SimCollectives comms(server.systemName);
    const ModelConfig &m = graph::findModel("GPT2-Large");
    SweepStats stats;
    sweepStrategies(oracle, comms, server, m, 32, SweepOptions{}, &stats);
    EXPECT_GT(stats.prunedMicroRows + stats.prunedFactorizations, 0u);
    EXPECT_GT(stats.skippedPoints, 0u);
    EXPECT_GT(stats.stagePriceHits, 0u);
}

TEST(SweepPrune, MemoDoesNotChangeHybridForecasts)
{
    const eval::SimulatorOracle oracle;
    const ServerConfig server = a100x8();
    const SimCollectives comms(server.systemName);
    const ModelConfig &m = graph::findModel("GPT2-Large");

    StagePriceMemo memo;
    for (const bool recompute : {false, true}) {
        for (const PipelineSchedule schedule :
             {PipelineSchedule::GPipe, PipelineSchedule::OneFOneB,
              PipelineSchedule::Interleaved1F1B}) {
            HybridConfig hy;
            hy.tpDegree = 2;
            hy.ppDegree = 2;
            hy.dpDegree = 2;
            hy.numMicroBatches = 4;
            hy.schedule = schedule;
            hy.recomputeActivations = recompute;
            const HybridResult plain = hybridTrainingMs(
                oracle, comms, server, m, 16, hy);
            // Twice through the same memo: cold then warm.
            const HybridResult cold = hybridTrainingMs(
                oracle, comms, server, m, 16, hy, &memo);
            const HybridResult warm = hybridTrainingMs(
                oracle, comms, server, m, 16, hy, &memo);
            // The memo path prices stages by component (embedding +
            // layers + head), re-associating the node sum: equal to
            // the plain path to FP rounding. Memoized results repeat
            // bitwise.
            EXPECT_NEAR(plain.latencyMs, cold.latencyMs,
                        1e-9 * plain.latencyMs);
            EXPECT_DOUBLE_EQ(cold.latencyMs, warm.latencyMs);
            EXPECT_NEAR(plain.commBytes, cold.commBytes,
                        1e-9 * plain.commBytes);
            EXPECT_DOUBLE_EQ(cold.commBytes, warm.commBytes);
            EXPECT_DOUBLE_EQ(cold.recomputeMs, warm.recomputeMs);
        }
    }
    EXPECT_GT(memo.hits(), 0u);
}

TEST(SweepPrune, ThreadPoolIsDeterministic)
{
    // Same exhaustive space priced serially and on the pool: identical
    // ranked lists (the comparator is total over the swept fields).
    const eval::SimulatorOracle oracle;
    const ServerConfig server = h100x4();
    const SimCollectives comms(server.systemName);
    const ModelConfig &m = graph::findModel("GPT2-Large");

    SweepOptions serial;
    serial.exhaustive = true;
    serial.threads = 1;
    SweepOptions pooled;
    pooled.exhaustive = true;
    pooled.threads = 8;
    const auto a = sweepStrategies(oracle, comms, server, m, 16, serial);
    const auto b = sweepStrategies(oracle, comms, server, m, 16, pooled);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(sameConfig(a[i].config, b[i].config)) << i;
        EXPECT_DOUBLE_EQ(a[i].result.latencyMs, b[i].result.latencyMs)
            << i;
    }
}

} // namespace
} // namespace neusight::dist
