/**
 * @file
 * Tests for the three baselines: roofline analysis (exact formula),
 * Li et al. (per-GPU regression + bandwidth extrapolation), and Habitat
 * (direct-latency MLPs, kernel-alike reference scaling).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/habitat.hpp"
#include "baselines/li.hpp"
#include "baselines/roofline.hpp"
#include "gpusim/device.hpp"

namespace neusight::baselines {
namespace {

using gpusim::OpType;

std::map<OpType, dataset::OperatorDataset>
tinyCorpus()
{
    dataset::SamplerConfig sampler;
    sampler.bmmSamples = 400;
    sampler.fcSamples = 250;
    sampler.elementwiseSamples = 200;
    sampler.softmaxSamples = 100;
    sampler.layernormSamples = 100;
    return dataset::generateOperatorData(gpusim::nvidiaTrainingSet(),
                                         sampler);
}

TEST(Roofline, ComputeBoundKernel)
{
    const RooflinePredictor roofline;
    const gpusim::GpuSpec &gpu = gpusim::findGpu("V100");
    const auto desc = gpusim::makeBmm(16, 2048, 2048, 2048);
    // Heavily compute bound: latency = flops / peak.
    EXPECT_NEAR(roofline.predictKernelMs(desc, gpu),
                desc.flops / gpu.peakFlops() * 1e3, 1e-9);
}

TEST(Roofline, MemoryBoundKernel)
{
    const RooflinePredictor roofline;
    const gpusim::GpuSpec &gpu = gpusim::findGpu("H100");
    const auto desc = gpusim::makeElementwise("add", 1 << 24, 2, 1.0);
    EXPECT_NEAR(roofline.predictKernelMs(desc, gpu),
                desc.memBytes / gpu.memBwBytes() * 1e3, 1e-9);
}

TEST(Roofline, AlwaysUnderestimatesSimulator)
{
    // The simulator never exceeds the roofline by construction, except
    // for small L2-resident kernels; large kernels must satisfy it.
    const RooflinePredictor roofline;
    for (const char *name : {"P100", "A100-40GB", "H100"}) {
        const gpusim::GpuSpec &gpu = gpusim::findGpu(name);
        const gpusim::Device dev(gpu);
        const auto desc = gpusim::makeBmm(32, 2048, 2048, 1024);
        EXPECT_LT(roofline.predictKernelMs(desc, gpu),
                  dev.measureKernelMs(desc))
            << name;
    }
}

TEST(Roofline, UsesMatrixPeakOnAmd)
{
    const RooflinePredictor roofline;
    const gpusim::GpuSpec &mi100 = gpusim::findGpu("MI100");
    const auto desc = gpusim::makeBmm(8, 4096, 4096, 4096);
    EXPECT_NEAR(roofline.predictKernelMs(desc, mi100),
                desc.flops / mi100.matrixFlops() * 1e3, 1e-9);
}

TEST(Li, RequiresTraining)
{
    const LiPredictor li;
    EXPECT_FALSE(li.trained());
    EXPECT_DEATH(li.predictKernelMs(gpusim::makeBmm(1, 64, 64, 64),
                                    gpusim::findGpu("V100")),
                 "before train");
}

TEST(Li, InTrainingGpuUsesOwnFit)
{
    LiPredictor li;
    li.train(tinyCorpus());
    ASSERT_TRUE(li.trained());
    const gpusim::GpuSpec &v100 = gpusim::findGpu("V100");
    const auto small = gpusim::makeBmm(1, 128, 128, 128);
    const auto big = gpusim::makeBmm(64, 1024, 1024, 1024);
    // Linear in FLOPs: latency grows proportionally for in-set GPUs.
    const double lat_small = li.predictKernelMs(small, v100);
    const double lat_big = li.predictKernelMs(big, v100);
    EXPECT_GT(lat_big, lat_small);
}

TEST(Li, ExtrapolatesByMemoryBandwidth)
{
    LiPredictor li;
    li.train(tinyCorpus());
    // H100 is unseen: prediction comes from the bandwidth regression and
    // must scale linearly with FLOPs.
    const gpusim::GpuSpec &h100 = gpusim::findGpu("H100");
    const auto d1 = gpusim::makeBmm(8, 1024, 1024, 1024);
    const auto d2 = gpusim::makeBmm(16, 1024, 1024, 1024);
    const double l1 = li.predictKernelMs(d1, h100);
    const double l2 = li.predictKernelMs(d2, h100);
    // Doubled flops term plus the same launch-floor intercept.
    EXPECT_GT(l2, l1 * 1.2);
    EXPECT_LT(l2, l1 * 2.5);
}

TEST(Li, LinearAssumptionFailsForSmallKernels)
{
    // The paper's critique (Fig. 2b): the linear latency~FLOPs fit breaks
    // down for small matrices, where the GPU is under-utilized and the
    // regression is dominated by its large-kernel slope and intercept.
    LiPredictor li;
    li.train(tinyCorpus());
    const gpusim::GpuSpec &v100 = gpusim::findGpu("V100");
    const gpusim::Device dev(v100);
    double worst_error = 0.0;
    for (uint64_t dim : {16u, 32u, 64u}) {
        const auto tiny = gpusim::makeBmm(1, dim, dim, dim);
        const double measured = dev.measureKernelMs(tiny);
        const double predicted = li.predictKernelMs(tiny, v100);
        worst_error = std::max(
            worst_error, std::abs(predicted - measured) / measured);
    }
    EXPECT_GT(worst_error, 0.25);
}

TEST(Habitat, FeatureLayoutIsFixedWidth)
{
    const gpusim::GpuSpec &gpu = gpusim::findGpu("T4");
    for (const auto &desc :
         {gpusim::makeBmm(2, 64, 128, 32), gpusim::makeLinear(16, 32, 64),
          gpusim::makeSoftmax(128, 64),
          gpusim::makeElementwise("add", 100, 2, 1.0)}) {
        const auto f = HabitatPredictor::features(desc, gpu);
        ASSERT_EQ(f.size(), 8u) << desc.summary();
        EXPECT_DOUBLE_EQ(f[0], gpu.memorySizeGB);
        EXPECT_DOUBLE_EQ(f[1], gpu.memoryBwGBps);
        EXPECT_DOUBLE_EQ(f[2], gpu.numSms);
    }
    const auto bmm = HabitatPredictor::features(
        gpusim::makeBmm(2, 64, 128, 32), gpu);
    EXPECT_DOUBLE_EQ(bmm[4], 2.0);
    EXPECT_DOUBLE_EQ(bmm[5], 64.0);
    EXPECT_DOUBLE_EQ(bmm[6], 128.0);
    EXPECT_DOUBLE_EQ(bmm[7], 32.0);
}

TEST(Habitat, KernelAlikeScalesByBandwidth)
{
    const HabitatPredictor habitat; // Untrained is fine for EW ops.
    const auto desc = gpusim::makeElementwise("add", 1 << 22, 2, 1.0);
    const gpusim::Device ref(gpusim::findGpu("V100"));
    const double ref_ms = ref.measureKernelMs(desc);
    const gpusim::GpuSpec &h100 = gpusim::findGpu("H100");
    EXPECT_NEAR(habitat.predictKernelMs(desc, h100),
                ref_ms * 900.0 / 3430.0, 1e-9);
}

TEST(Habitat, V100UsesFallbackReference)
{
    const HabitatPredictor habitat;
    const auto desc = gpusim::makeElementwise("mul", 1 << 20, 2, 1.0);
    const gpusim::Device p100(gpusim::findGpu("P100"));
    const double expected =
        p100.measureKernelMs(desc) * 732.0 / 900.0;
    EXPECT_NEAR(habitat.predictKernelMs(desc, gpusim::findGpu("V100")),
                expected, 1e-9);
}

TEST(Habitat, UntrainedKernelVaryingDies)
{
    const HabitatPredictor habitat;
    EXPECT_DEATH(habitat.predictKernelMs(gpusim::makeBmm(1, 64, 64, 64),
                                         gpusim::findGpu("V100")),
                 "no model trained");
}

TEST(Habitat, TrainedPredictsReasonablyInDistribution)
{
    HabitatConfig cfg;
    cfg.hiddenDim = 32;
    cfg.hiddenLayers = 4;
    cfg.train.epochs = 40;
    HabitatPredictor habitat(cfg);
    habitat.train(tinyCorpus());
    const gpusim::GpuSpec &v100 = gpusim::findGpu("V100");
    const gpusim::Device dev(v100);
    // In-distribution shape on a training GPU.
    const auto desc = gpusim::makeBmm(16, 512, 512, 512);
    // Direct-latency regression over five decades of latency is crude
    // even in distribution (paper Fig. 2a shows up to 38% error); just
    // require the right order of magnitude here.
    const double measured = dev.measureKernelMs(desc);
    const double predicted = habitat.predictKernelMs(desc, v100);
    EXPECT_GT(predicted, measured * 0.1);
    EXPECT_LT(predicted, measured * 10.0);
}

} // namespace
} // namespace neusight::baselines
