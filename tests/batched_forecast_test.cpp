/**
 * @file
 * Equivalence tests for the batched inference path: the tape-free
 * Mlp::inferRows against the autograd forward, KernelPredictor::
 * predictBatch / NeuSight::predictKernelsMs against the single-kernel
 * path (bit-exact on seeded random kernels), and the deduplicated
 * predictGraphMs against the node-by-node sum.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/predictor.hpp"
#include "graph/models.hpp"
#include "nn/autograd.hpp"
#include "nn/module.hpp"

namespace neusight::core {
namespace {

using gpusim::KernelDesc;
using gpusim::OpType;

TEST(InferRows, MatchesTapedForwardBitExactly)
{
    nn::MlpConfig cfg;
    cfg.inputDim = 5;
    cfg.hiddenDim = 48;
    cfg.hiddenLayers = 6;
    cfg.outputDim = 2;
    cfg.seed = 99;
    nn::Mlp mlp(cfg);

    Rng rng(1234);
    for (size_t rows : {1u, 3u, 17u, 64u}) {
        Matrix x(rows, cfg.inputDim);
        for (size_t i = 0; i < x.size(); ++i)
            x.raw()[i] = rng.normal(0.0, 2.0);
        const Matrix taped = mlp.forward(nn::constant(x)).value();
        const Matrix inferred = mlp.inferRows(x);
        ASSERT_EQ(taped.rows(), inferred.rows());
        ASSERT_EQ(taped.cols(), inferred.cols());
        for (size_t i = 0; i < taped.size(); ++i)
            EXPECT_EQ(taped.raw()[i], inferred.raw()[i])
                << "rows=" << rows << " element " << i;
    }
}

TEST(InferRows, BatchRowsMatchSingleRowBitExactly)
{
    // The dedup/batching contract rests on each output row depending
    // only on its own input row: a (N, F) pass must reproduce N
    // independent (1, F) passes exactly.
    nn::MlpConfig cfg;
    cfg.inputDim = 5;
    cfg.hiddenDim = 64;
    cfg.hiddenLayers = 4;
    cfg.outputDim = 2;
    cfg.seed = 7;
    nn::Mlp mlp(cfg);

    Rng rng(77);
    const size_t n = 96; // Above the GEMM's OpenMP threshold.
    Matrix batch(n, cfg.inputDim);
    for (size_t i = 0; i < batch.size(); ++i)
        batch.raw()[i] = rng.normal(0.0, 3.0);
    const Matrix all = mlp.inferRows(batch);
    for (size_t r = 0; r < n; ++r) {
        Matrix row(1, cfg.inputDim);
        for (size_t c = 0; c < cfg.inputDim; ++c)
            row.at(0, c) = batch.at(r, c);
        const Matrix one = mlp.inferRows(row);
        for (size_t c = 0; c < cfg.outputDim; ++c)
            EXPECT_EQ(all.at(r, c), one.at(0, c)) << "row " << r;
    }
}

/** Small shared corpus + trained framework (built once for the suite). */
class BatchedForecast : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        dataset::SamplerConfig sampler;
        sampler.bmmSamples = 400;
        sampler.fcSamples = 300;
        sampler.elementwiseSamples = 200;
        sampler.softmaxSamples = 150;
        sampler.layernormSamples = 150;
        PredictorConfig cfg;
        cfg.hiddenDim = 32;
        cfg.hiddenLayers = 4;
        cfg.train.epochs = 20;
        framework = new NeuSight(cfg);
        framework->train(dataset::generateOperatorData(
            gpusim::nvidiaTrainingSet(), sampler));
    }

    static void
    TearDownTestSuite()
    {
        delete framework;
        framework = nullptr;
    }

    /** Seeded random kernels across every learned family + a fallback. */
    static std::vector<KernelDesc>
    randomKernels(uint64_t seed, size_t count)
    {
        Rng rng(seed);
        const auto dim = [&rng](uint64_t lo, uint64_t hi) {
            return lo + static_cast<uint64_t>(rng.uniform() *
                                              static_cast<double>(hi - lo));
        };
        std::vector<KernelDesc> descs;
        for (size_t i = 0; i < count; ++i) {
            switch (i % 6) {
              case 0:
                descs.push_back(gpusim::makeBmm(dim(1, 16), dim(64, 2048),
                                                dim(64, 2048),
                                                dim(32, 1024)));
                break;
              case 1:
                descs.push_back(gpusim::makeLinear(
                    dim(64, 4096), dim(64, 2048), dim(64, 4096)));
                break;
              case 2:
                descs.push_back(gpusim::makeElementwise(
                    "gelu", dim(1 << 12, 1 << 22)));
                break;
              case 3:
                descs.push_back(
                    gpusim::makeSoftmax(dim(64, 8192), dim(64, 2048)));
                break;
              case 4:
                descs.push_back(
                    gpusim::makeLayerNorm(dim(64, 8192), dim(64, 2048)));
                break;
              default:
                // Memory-fallback family (no learned predictor).
                descs.push_back(gpusim::makeMemoryOp(
                    "embedding", static_cast<double>(dim(1 << 16, 1 << 26))));
                break;
            }
        }
        // Duplicate a slice so the dedup path sees repeats.
        for (size_t i = 0; i + 1 < count / 3; ++i)
            descs.push_back(descs[i]);
        return descs;
    }

    static NeuSight *framework;
};

NeuSight *BatchedForecast::framework = nullptr;

TEST_F(BatchedForecast, PredictKernelsMsMatchesSinglePathBitExactly)
{
    for (const char *gpu_name : {"A100-40GB", "H100", "L4"}) {
        const gpusim::GpuSpec &gpu = gpusim::findGpu(gpu_name);
        const std::vector<KernelDesc> descs =
            randomKernels(42 + gpu_name[0], 60);
        const std::vector<double> batched =
            framework->predictKernelsMs(descs, gpu);
        ASSERT_EQ(batched.size(), descs.size());
        for (size_t i = 0; i < descs.size(); ++i)
            EXPECT_EQ(batched[i],
                      framework->predictKernelMs(descs[i], gpu))
                << gpu_name << " kernel " << i << ": "
                << descs[i].summary();
    }
}

TEST_F(BatchedForecast, PredictBatchMatchesPredictBitExactly)
{
    // Directly at the KernelPredictor layer: N rows through one matrix
    // pass vs N single-row calls.
    const gpusim::GpuSpec &gpu = gpusim::findGpu("H100");
    Rng rng(5);
    std::vector<KernelDesc> descs;
    std::vector<std::vector<uint64_t>> tiles;
    for (int i = 0; i < 40; ++i) {
        const uint64_t rows =
            64 + static_cast<uint64_t>(rng.uniform() * 4000.0);
        const uint64_t cols =
            64 + static_cast<uint64_t>(rng.uniform() * 2000.0);
        KernelDesc desc = gpusim::makeLayerNorm(rows, cols);
        KernelDesc lookup = desc;
        lookup.opName = canonicalOpName(desc.opName);
        tiles.push_back(framework->tileDatabase().lookup(lookup, gpu));
        descs.push_back(std::move(desc));
    }
    // predictBatch is private to no one: reach the layer-norm family's
    // predictor through the framework's single-kernel API for reference.
    KernelPredictor pred(OpType::LayerNorm, PredictorConfig{});
    dataset::SamplerConfig sampler;
    sampler.layernormSamples = 200;
    const auto corpus = dataset::generateOperatorData(
        {gpusim::findGpu("V100")}, sampler);
    pred.train(corpus.at(OpType::LayerNorm));
    const std::vector<PredictionDetail> batched =
        pred.predictBatch(descs, gpu, tiles);
    ASSERT_EQ(batched.size(), descs.size());
    for (size_t i = 0; i < descs.size(); ++i) {
        const PredictionDetail one = pred.predict(descs[i], gpu, tiles[i]);
        EXPECT_EQ(batched[i].latencyMs, one.latencyMs) << i;
        EXPECT_EQ(batched[i].alpha, one.alpha) << i;
        EXPECT_EQ(batched[i].beta, one.beta) << i;
        EXPECT_EQ(batched[i].utilization, one.utilization) << i;
        EXPECT_EQ(batched[i].numWaves, one.numWaves) << i;
    }
}

TEST_F(BatchedForecast, GraphForecastMatchesNodeByNodeSum)
{
    // The deduplicated graph path regroups the sum (count * ms instead
    // of node order), so equality is near-exact rather than bit-exact.
    const gpusim::GpuSpec &gpu = gpusim::findGpu("A100-40GB");
    const graph::KernelGraph g = graph::buildTrainingGraph(
        graph::findModel("GPT2-Large"), 4);
    double node_sum = 0.0;
    for (const auto &node : g.nodes)
        if (node.kind == graph::NodeKind::Compute)
            node_sum += framework->predictKernelMs(node.kernel, gpu);
    const double batched = framework->predictGraphMs(g, gpu);
    EXPECT_NEAR(batched, node_sum, 1e-9 * node_sum);
}

} // namespace
} // namespace neusight::core
