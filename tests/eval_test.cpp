/**
 * @file
 * Tests for the evaluation harness: case enumeration, memory screening,
 * error aggregation, OOD filtering, and operator-contribution math.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/roofline.hpp"
#include "eval/harness.hpp"
#include "eval/oracle.hpp"

namespace neusight::eval {
namespace {

TEST(Harness, PaperCasesCoverAllModelsTwice)
{
    const auto cases = paperEvaluationCases(false);
    EXPECT_EQ(cases.size(), 12u); // 6 models x 2 batch sizes.
    size_t ood = 0;
    for (const auto &c : cases) {
        EXPECT_FALSE(c.training);
        EXPECT_GE(c.batch, 1u);
        ood += c.oodModel ? 1 : 0;
    }
    EXPECT_EQ(ood, 2u); // GPT3-2.7B at two batch sizes.
    for (const auto &c : paperEvaluationCases(true))
        EXPECT_TRUE(c.training);
}

TEST(Harness, TrainingScreensSmallMemoryGpus)
{
    // Training cases never land on sub-24GB GPUs (paper Section 6.1).
    std::vector<WorkloadCase> cases;
    WorkloadCase c;
    c.model = graph::findModel("BERT-Large");
    c.batch = 2;
    c.training = true;
    cases.push_back(c);
    const baselines::RooflinePredictor roofline;
    const std::vector<gpusim::GpuSpec> gpus = {
        gpusim::findGpu("T4"), // 16 GB: excluded.
        gpusim::findGpu("A100-40GB")};
    const auto results = evaluateCases(cases, gpus, {&roofline});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].gpuName, "A100-40GB");
}

TEST(Harness, OomConfigurationsAreSkipped)
{
    std::vector<WorkloadCase> cases;
    WorkloadCase c;
    c.model = graph::findModel("GPT3-2.7B");
    c.batch = 64; // Far beyond any single device.
    c.training = true;
    cases.push_back(c);
    const baselines::RooflinePredictor roofline;
    const auto results = evaluateCases(
        cases, {gpusim::findGpu("A100-80GB")}, {&roofline});
    EXPECT_TRUE(results.empty());
}

TEST(Harness, ResultsCarryOodFlags)
{
    std::vector<WorkloadCase> cases;
    WorkloadCase c;
    c.model = graph::findModel("BERT-Large");
    c.batch = 2;
    cases.push_back(c);
    const baselines::RooflinePredictor roofline;
    const auto results = evaluateCases(
        cases, {gpusim::findGpu("V100"), gpusim::findGpu("H100")},
        {&roofline});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].oodGpu);
    EXPECT_TRUE(results[1].oodGpu);
    EXPECT_GT(results[0].measuredMs, 0.0);
    EXPECT_EQ(results[0].predictedMs.count("Roofline"), 1u);
}

TEST(Harness, ErrorAggregationMath)
{
    std::vector<CaseResult> results(2);
    results[0].measuredMs = 100.0;
    results[0].predictedMs["P"] = 110.0; // 10% error.
    results[1].measuredMs = 200.0;
    results[1].predictedMs["P"] = 160.0; // 20% error.
    results[1].oodGpu = true;
    const auto overall = endToEndError(results);
    EXPECT_NEAR(overall.at("P"), 15.0, 1e-12);
    const auto ood = outOfDistributionError(results);
    EXPECT_NEAR(ood.at("P"), 20.0, 1e-12);
}

TEST(Harness, OperatorContributionSumsToOne)
{
    const auto g =
        graph::buildInferenceGraph(graph::findModel("GPT2-Large"), 2);
    const auto contrib =
        operatorContribution(g, gpusim::findGpu("H100"));
    double total = 0.0;
    for (const auto &[type, frac] : contrib) {
        EXPECT_GE(frac, 0.0);
        EXPECT_LE(frac, 1.0);
        total += frac;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    // GEMMs dominate transformer latency (paper Table 6).
    EXPECT_GT(contrib.at(gpusim::OpType::FullyConnected), 0.4);
}

TEST(Oracle, MatchesDeviceMeasurement)
{
    const SimulatorOracle oracle;
    const auto &gpu = gpusim::findGpu("L4");
    const auto desc = gpusim::makeSoftmax(8192, 512);
    EXPECT_DOUBLE_EQ(oracle.predictKernelMs(desc, gpu),
                     gpusim::Device(gpu).measureKernelMs(desc));
    EXPECT_EQ(oracle.name(), "Measured");
}

} // namespace
} // namespace neusight::eval
