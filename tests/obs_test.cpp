/**
 * @file
 * Tests for the observability layer: counter exactness under concurrent
 * hammering, histogram bucket geometry and quantile error bounds, the
 * metrics registry (create-on-first-use, adoption, probes, JSON and
 * table snapshots), and the span tracer (nesting, Chrome trace-event
 * well-formedness, and the no-allocation guarantee of the disabled
 * path).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// Global allocation counter: every operator new in this binary bumps
// it, so the disabled-span test can assert an allocation count of
// exactly zero across span construction/destruction.
static std::atomic<uint64_t> gAllocations{0};

void *
operator new(std::size_t size)
{
    gAllocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace neusight {
namespace {

TEST(Counter, SingleThreadExact)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentHammerIsExact)
{
    // Striped increments must never lose a count: each inc lands on
    // exactly one stripe and value() sums all stripes.
    obs::Counter c;
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 100000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&c] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                c.inc();
        });
    }
    for (std::thread &th : pool)
        th.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAndAdd)
{
    obs::Gauge g;
    g.set(10);
    g.add(-3);
    EXPECT_EQ(g.value(), 7);
    g.set(-5);
    EXPECT_EQ(g.value(), -5);
}

TEST(Histogram, BucketBoundariesContainTheirValues)
{
    // Every value must fall inside [lower, upper) of its own bucket,
    // and consecutive buckets must tile the axis without gaps.
    for (double v : {0.1, 0.11, 0.5, 1.0, 3.7, 100.0, 8.1e5, 1.0e9}) {
        const size_t b = obs::Histogram::bucketIndex(v);
        EXPECT_LE(obs::Histogram::bucketLowerBound(b), v) << v;
        EXPECT_LT(v, obs::Histogram::bucketUpperBound(b)) << v;
    }
    for (size_t b = 0; b + 1 < obs::Histogram::kNumBuckets; ++b) {
        EXPECT_DOUBLE_EQ(obs::Histogram::bucketUpperBound(b),
                         obs::Histogram::bucketLowerBound(b + 1));
    }
}

TEST(Histogram, OutOfRangeValuesClamp)
{
    EXPECT_EQ(obs::Histogram::bucketIndex(0.0), 0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(-5.0), 0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(1e300),
              obs::Histogram::kNumBuckets - 1);
}

TEST(Histogram, BasicStatistics)
{
    obs::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    h.record(10.0);
    h.record(20.0);
    h.record(30.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_NEAR(h.sum(), 60.0, 1e-2);
    EXPECT_NEAR(h.mean(), 20.0, 1e-2);
    EXPECT_NEAR(h.minValue(), 10.0, 1e-2);
    EXPECT_NEAR(h.maxValue(), 30.0, 1e-2);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.maxValue(), 0.0);
}

TEST(Histogram, QuantileWithinOneBucketWidth)
{
    // Log-spaced sample spanning five orders of magnitude; the estimate
    // must sit within one bucket width (a factor of 2^(1/4)) of the
    // exact order statistic.
    obs::Histogram h;
    std::vector<double> values;
    for (int i = 0; i < 1000; ++i)
        values.push_back(0.5 * std::pow(1.012, i));
    for (double v : values)
        h.record(v);
    std::sort(values.begin(), values.end());

    const double width = std::pow(
        2.0, 1.0 / static_cast<double>(obs::Histogram::kBucketsPerOctave));
    for (double q : {0.01, 0.10, 0.50, 0.90, 0.99, 0.999}) {
        const size_t rank = static_cast<size_t>(
            std::ceil(q * static_cast<double>(values.size())));
        const double exact = values[std::max<size_t>(rank, 1) - 1];
        const double est = h.quantile(q);
        EXPECT_LE(est / exact, width * 1.001) << "q=" << q;
        EXPECT_GE(est / exact, 1.0 / (width * 1.001)) << "q=" << q;
    }
}

TEST(Histogram, QuantileClampsToObservedRange)
{
    obs::Histogram h;
    h.record(5.0);
    for (double q : {0.0, 0.5, 1.0})
        EXPECT_NEAR(h.quantile(q), 5.0, 1e-2) << q;
}

TEST(Histogram, ConcurrentRecordCountsEveryObservation)
{
    obs::Histogram h;
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 50000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&h, t] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                h.record(1.0 + static_cast<double>((t + i) % 97));
        });
    }
    for (std::thread &th : pool)
        th.join();
    EXPECT_EQ(h.count(), kThreads * kPerThread);
}

TEST(Registry, CreateOnFirstUseReturnsSharedInstance)
{
    obs::MetricsRegistry reg;
    auto c1 = reg.counter("test.counter");
    auto c2 = reg.counter("test.counter");
    EXPECT_EQ(c1.get(), c2.get());
    c1->inc(3);
    EXPECT_EQ(c2->value(), 3u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, TypeMismatchIsFatal)
{
    obs::MetricsRegistry reg;
    reg.counter("test.metric");
    EXPECT_THROW(reg.gauge("test.metric"), std::runtime_error);
    EXPECT_THROW(reg.histogram("test.metric"), std::runtime_error);
}

TEST(Registry, AdoptedMetricsCannotDrift)
{
    // The adopted object and the registry snapshot read the same
    // atomics — incrementing through either handle is visible in both.
    obs::MetricsRegistry reg;
    auto owned = std::make_shared<obs::Counter>();
    owned->inc(5);
    reg.adopt("test.adopted", owned);
    EXPECT_EQ(reg.counter("test.adopted").get(), owned.get());
    reg.counter("test.adopted")->inc(2);
    EXPECT_EQ(owned->value(), 7u);
}

TEST(Registry, JsonSnapshotRoundTrips)
{
    obs::MetricsRegistry reg;
    reg.counter("test.count")->inc(12);
    reg.gauge("test.depth")->set(-4);
    reg.histogram("test.lat_us")->record(100.0);
    reg.probe("test.probe", [] { return 42.5; });

    const common::Json snap =
        common::Json::parse(reg.toJson().dump(0));
    EXPECT_EQ(snap.at("test.count").asInt(), 12);
    EXPECT_EQ(snap.at("test.depth").asInt(), -4);
    EXPECT_DOUBLE_EQ(snap.at("test.probe").asDouble(), 42.5);
    const common::Json &hist = snap.at("test.lat_us");
    EXPECT_EQ(hist.at("count").asInt(), 1);
    EXPECT_EQ(hist.at("unit").asString(), "us");
    EXPECT_TRUE(hist.at("buckets").isArray());

    const std::string table = reg.toTable();
    EXPECT_NE(table.find("test.count"), std::string::npos);
    EXPECT_NE(table.find("test.lat_us"), std::string::npos);
}

TEST(Registry, RemoveUnregisters)
{
    obs::MetricsRegistry reg;
    reg.counter("test.gone");
    reg.remove("test.gone");
    EXPECT_EQ(reg.size(), 0u);
    reg.remove("test.never_there"); // No-op, must not throw.
}

TEST(Trace, SpansNestAndRecordDepth)
{
    obs::Tracer tracer;
    tracer.setEnabled(true);
    {
        obs::TraceSpan outer("obs.test.outer", "test", tracer);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        {
            obs::TraceSpan inner("obs.test.inner", "test", tracer);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 2u);

    const auto &inner =
        events[0].name == "obs.test.inner" ? events[0] : events[1];
    const auto &outer =
        events[0].name == "obs.test.outer" ? events[0] : events[1];
    ASSERT_EQ(inner.name, "obs.test.inner");
    ASSERT_EQ(outer.name, "obs.test.outer");
    EXPECT_EQ(outer.depth, 0);
    EXPECT_EQ(inner.depth, 1);
    EXPECT_EQ(inner.threadId, outer.threadId);
    // The child interval must lie inside the parent interval.
    EXPECT_GE(inner.startUs, outer.startUs);
    EXPECT_LE(inner.startUs + inner.durationUs,
              outer.startUs + outer.durationUs);
    EXPECT_GT(inner.durationUs, 0.0);
}

TEST(Trace, ChromeJsonIsWellFormed)
{
    obs::Tracer tracer;
    tracer.setEnabled(true);
    {
        obs::TraceSpan span("obs.test.span", "test", tracer);
    }
    tracer.add("obs.test.manual", "test", 1.0, 2.0, 1);

    const common::Json doc =
        common::Json::parse(tracer.toChromeJson().dump(2));
    const auto &events = doc.at("traceEvents").asArray();
    ASSERT_EQ(events.size(), 2u);
    for (const common::Json &event : events) {
        EXPECT_EQ(event.at("ph").asString(), "X");
        EXPECT_TRUE(event.at("name").isString());
        EXPECT_TRUE(event.at("cat").isString());
        EXPECT_TRUE(event.at("ts").isNumber());
        EXPECT_TRUE(event.at("dur").isNumber());
        EXPECT_TRUE(event.at("pid").isNumber());
        EXPECT_TRUE(event.at("tid").isNumber());
        EXPECT_TRUE(event.at("args").at("depth").isNumber());
    }
}

TEST(Trace, DisabledAddIsANoOp)
{
    obs::Tracer tracer;
    tracer.add("obs.test.ignored", "test", 0.0, 1.0);
    EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(Trace, ClearDropsEvents)
{
    obs::Tracer tracer;
    tracer.setEnabled(true);
    tracer.add("obs.test.kept", "test", 0.0, 1.0);
    EXPECT_EQ(tracer.eventCount(), 1u);
    tracer.clear();
    EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(Trace, DisabledSpanAllocatesNothing)
{
    // The disabled path is the one compiled into every hot path: it
    // must not touch the heap (and must record nothing).
    obs::Tracer tracer; // Never enabled.
    const uint64_t before = gAllocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 100000; ++i) {
        obs::TraceSpan span("obs.test.disabled", "test", tracer);
    }
    const uint64_t after = gAllocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before);
    EXPECT_EQ(tracer.eventCount(), 0u);
}

} // namespace
} // namespace neusight
