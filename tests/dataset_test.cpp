/**
 * @file
 * Tests for the Section-6.1 training-data generator: per-family sample
 * budgets, paper shape ranges, OOM screening, determinism, and coverage
 * of the training GPUs.
 */

#include <gtest/gtest.h>

#include <set>

#include "dataset/dataset.hpp"

namespace neusight::dataset {
namespace {

using gpusim::OpType;

SamplerConfig
tinyConfig()
{
    SamplerConfig cfg;
    cfg.bmmSamples = 200;
    cfg.fcSamples = 150;
    cfg.elementwiseSamples = 120;
    cfg.softmaxSamples = 60;
    cfg.layernormSamples = 60;
    return cfg;
}

TEST(Dataset, GeneratesAllFiveFamilies)
{
    const auto corpus =
        generateOperatorData(gpusim::nvidiaTrainingSet(), tinyConfig());
    EXPECT_EQ(corpus.size(), 5u);
    for (OpType type :
         {OpType::BatchedMatmul, OpType::FullyConnected, OpType::Elementwise,
          OpType::Softmax, OpType::LayerNorm}) {
        ASSERT_TRUE(corpus.count(type));
        EXPECT_GT(corpus.at(type).size(), 0u);
    }
}

TEST(Dataset, RespectsSampleBudgets)
{
    const SamplerConfig cfg = tinyConfig();
    const auto corpus =
        generateOperatorData(gpusim::nvidiaTrainingSet(), cfg);
    // OOM screening may drop a few samples, never add any.
    EXPECT_LE(corpus.at(OpType::BatchedMatmul).size(), cfg.bmmSamples);
    EXPECT_GE(corpus.at(OpType::BatchedMatmul).size(),
              cfg.bmmSamples * 9 / 10);
    EXPECT_LE(corpus.at(OpType::Softmax).size(), cfg.softmaxSamples);
}

TEST(Dataset, ShapesWithinPaperRanges)
{
    const SamplerConfig cfg = tinyConfig();
    const auto corpus =
        generateOperatorData(gpusim::nvidiaTrainingSet(), cfg);
    for (const auto &s : corpus.at(OpType::BatchedMatmul).samples) {
        for (uint64_t d : s.desc.outDims) {
            EXPECT_GE(d, 1u);
            EXPECT_LE(d, cfg.bmmMaxDim);
        }
        EXPECT_LE(s.desc.reduceDim, cfg.bmmMaxDim);
    }
    for (const auto &s : corpus.at(OpType::Softmax).samples) {
        EXPECT_GE(s.desc.outDims[0], cfg.rowMinBatch);
        EXPECT_LE(s.desc.outDims[0], cfg.rowMaxBatch);
        EXPECT_GE(s.desc.outDims[1], cfg.ewMinVec);
        EXPECT_LE(s.desc.outDims[1], cfg.ewMaxVec);
    }
}

TEST(Dataset, ElementwiseCoversSixOps)
{
    const auto corpus =
        generateOperatorData(gpusim::nvidiaTrainingSet(), tinyConfig());
    std::set<std::string> ops;
    for (const auto &s : corpus.at(OpType::Elementwise).samples)
        ops.insert(s.desc.opName);
    for (const char *op : {"add", "div", "mul", "gelu", "relu", "tanh"})
        EXPECT_TRUE(ops.count(op)) << op;
}

TEST(Dataset, SamplesCarryProfilerMetadata)
{
    const auto corpus =
        generateOperatorData(gpusim::nvidiaTrainingSet(), tinyConfig());
    for (const auto &s : corpus.at(OpType::FullyConnected).samples) {
        EXPECT_GT(s.latencyMs, 0.0);
        EXPECT_DOUBLE_EQ(s.latencyMs, s.launch.latencyMs);
        EXPECT_GE(s.launch.numWaves, 1u);
        EXPECT_GE(s.launch.numTiles, 1u);
        EXPECT_FALSE(s.launch.tile.dims.empty());
    }
}

TEST(Dataset, CoversAllTrainingGpus)
{
    const auto gpus = gpusim::nvidiaTrainingSet();
    const auto corpus = generateOperatorData(gpus, tinyConfig());
    std::set<std::string> seen;
    for (const auto &s : corpus.at(OpType::BatchedMatmul).samples)
        seen.insert(s.gpuName);
    EXPECT_EQ(seen.size(), gpus.size());
}

TEST(Dataset, DeterministicForFixedSeed)
{
    const auto a =
        generateOperatorData(gpusim::nvidiaTrainingSet(), tinyConfig());
    const auto b =
        generateOperatorData(gpusim::nvidiaTrainingSet(), tinyConfig());
    ASSERT_EQ(a.at(OpType::BatchedMatmul).size(),
              b.at(OpType::BatchedMatmul).size());
    for (size_t i = 0; i < a.at(OpType::BatchedMatmul).size(); ++i) {
        EXPECT_EQ(a.at(OpType::BatchedMatmul).samples[i].desc.outDims,
                  b.at(OpType::BatchedMatmul).samples[i].desc.outDims);
        EXPECT_DOUBLE_EQ(a.at(OpType::BatchedMatmul).samples[i].latencyMs,
                         b.at(OpType::BatchedMatmul).samples[i].latencyMs);
    }
}

TEST(Dataset, SeedChangesSamples)
{
    SamplerConfig cfg = tinyConfig();
    const auto a = generateOperatorData(gpusim::nvidiaTrainingSet(), cfg);
    cfg.seed += 1;
    const auto b = generateOperatorData(gpusim::nvidiaTrainingSet(), cfg);
    bool any_diff = false;
    const auto &sa = a.at(OpType::BatchedMatmul).samples;
    const auto &sb = b.at(OpType::BatchedMatmul).samples;
    for (size_t i = 0; i < std::min(sa.size(), sb.size()); ++i)
        any_diff = any_diff || sa[i].desc.outDims != sb[i].desc.outDims;
    EXPECT_TRUE(any_diff);
}

TEST(Dataset, OomScreeningDropsHugeKernels)
{
    // On a P4 (8 GB) a 65536x65536 FC weight cannot be profiled.
    const std::vector<gpusim::GpuSpec> gpus = {gpusim::findGpu("P4")};
    SamplerConfig cfg = tinyConfig();
    cfg.fcSamples = 400;
    const auto corpus = generateOperatorData(gpus, cfg);
    for (const auto &s : corpus.at(OpType::FullyConnected).samples)
        EXPECT_LE(s.desc.memBytes, 0.6 * gpusim::findGpu("P4").memBytes());
    EXPECT_LT(corpus.at(OpType::FullyConnected).size(), 400u);
}

TEST(Dataset, BmmSweepHonorsDimRange)
{
    const auto ds = generateBmmSweep({gpusim::findGpu("V100")}, 256, 1024,
                                     100, 7);
    EXPECT_GT(ds.size(), 0u);
    for (const auto &s : ds.samples) {
        EXPECT_GE(s.desc.outDims[1], 256u);
        EXPECT_LE(s.desc.outDims[1], 1024u);
        EXPECT_LE(s.desc.outDims[0], 128u); // Batch cap.
    }
}

} // namespace
} // namespace neusight::dataset
