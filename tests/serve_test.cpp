/**
 * @file
 * Tests for the forecast-serving subsystem: cache-key canonicalization,
 * LRU eviction order, concurrent hit/miss accounting under a thread
 * hammer, the cached NeuSight path, request coalescing, server
 * drain-on-shutdown, and the JSON wire protocol.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "common/logging.hpp"
#include "core/predictor.hpp"
#include "eval/oracle.hpp"
#include "serve/prediction_cache.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "sim/simulator.hpp"

namespace neusight::serve {
namespace {

using gpusim::findGpu;
using gpusim::KernelDesc;
using gpusim::makeLayerNorm;
using gpusim::makeLinear;

TEST(CacheKey, BackwardAndFusedKernelsCanonicalize)
{
    // Backward and fused kernels predict through their base operator's
    // tile entry; with equal numbers they must share one cache entry.
    const auto &gpu = findGpu("A100-40GB");
    const KernelDesc fwd = makeLayerNorm(4096, 1024);
    KernelDesc bwd = fwd;
    bwd.opName = "layernorm_bwd";
    KernelDesc fused = fwd;
    fused.opName = "layernorm+add";
    EXPECT_EQ(cacheFingerprint(fwd, gpu), cacheFingerprint(bwd, gpu));
    EXPECT_EQ(cacheFingerprint(fwd, gpu), cacheFingerprint(fused, gpu));
    EXPECT_EQ(core::canonicalOpName("layernorm_bwd"), "layernorm");
    EXPECT_EQ(core::canonicalOpName("add+layernorm"), "add");
}

TEST(CacheKey, DiscriminatesShapesAndGpus)
{
    const auto &a100 = findGpu("A100-40GB");
    const auto &h100 = findGpu("H100");
    const KernelDesc a = makeLinear(1024, 768, 768);
    const KernelDesc b = makeLinear(1024, 768, 1024);
    EXPECT_NE(cacheFingerprint(a, a100), cacheFingerprint(b, a100));
    EXPECT_NE(cacheFingerprint(a, a100), cacheFingerprint(a, h100));

    // Hypothetical GPUs can shadow a database name: every public
    // feature is part of the key, so they still key apart.
    gpusim::GpuSpec custom = h100;
    custom.numSms += 12;
    EXPECT_NE(cacheFingerprint(a, h100), cacheFingerprint(a, custom));
}

TEST(Cache, LruEvictionOrder)
{
    PredictionCache cache(2, 1); // One shard: global LRU order.
    core::PredictionDetail d;
    d.latencyMs = 1.0;
    cache.insert("a", d);
    cache.insert("b", d);
    core::PredictionDetail out;
    ASSERT_TRUE(cache.lookup("a", out)); // Promote "a"; "b" is now LRU.
    cache.insert("c", d);
    EXPECT_FALSE(cache.lookup("b", out));
    EXPECT_TRUE(cache.lookup("a", out));
    EXPECT_TRUE(cache.lookup("c", out));
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.size, 2u);
    EXPECT_EQ(stats.inserts, 3u);
}

TEST(Cache, ReinsertRefreshesInsteadOfEvicting)
{
    PredictionCache cache(2, 1);
    core::PredictionDetail d;
    d.latencyMs = 1.0;
    cache.insert("a", d);
    d.latencyMs = 2.0;
    cache.insert("a", d);
    core::PredictionDetail out;
    ASSERT_TRUE(cache.lookup("a", out));
    EXPECT_DOUBLE_EQ(out.latencyMs, 2.0);
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, ConcurrentHammerKeepsCountersConsistent)
{
    PredictionCache cache(128, 8);
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 4000;
    constexpr int kKeySpace = 300; // > capacity: forces evictions.
    std::atomic<uint64_t> local_hits{0};
    std::atomic<uint64_t> local_lookups{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, &local_hits, &local_lookups, t] {
            core::PredictionDetail detail;
            for (int i = 0; i < kOpsPerThread; ++i) {
                const std::string key =
                    "k" + std::to_string((i * 31 + t * 7) % kKeySpace);
                local_lookups.fetch_add(1);
                if (cache.lookup(key, detail)) {
                    local_hits.fetch_add(1);
                } else {
                    detail.latencyMs = static_cast<double>(i);
                    cache.insert(key, detail);
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    const CacheStats stats = cache.stats();
    // Every lookup is exactly one hit or one miss, across all threads.
    EXPECT_EQ(stats.hits + stats.misses, local_lookups.load());
    EXPECT_EQ(stats.hits, local_hits.load());
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.size, stats.capacity);
    // Entries live in lockstep with the LRU lists: inserts minus
    // evictions is exactly the resident count.
    EXPECT_EQ(stats.inserts - stats.evictions, stats.size);
}

TEST(CachedPredictorTest, MatchesInnerAndCounts)
{
    const eval::SimulatorOracle oracle;
    auto cache = std::make_shared<PredictionCache>(64);
    const CachedPredictor cached(oracle, cache);
    EXPECT_EQ(cached.name(), "Measured+cache");

    const auto &gpu = findGpu("V100");
    const KernelDesc desc = makeLinear(2048, 1024, 1024);
    const double truth = oracle.predictKernelMs(desc, gpu);
    EXPECT_DOUBLE_EQ(cached.predictKernelMs(desc, gpu), truth); // Miss.
    EXPECT_DOUBLE_EQ(cached.predictKernelMs(desc, gpu), truth); // Hit.
    const CacheStats stats = cache->stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST(CachedPredictorTest, DoesNotMergeKernelsTheBackendDistinguishes)
{
    // The simulator's ground truth differs between a forward kernel and
    // its numerically identical _bwd twin (per-kernel-name behaviour),
    // so the generic decorator must key on the raw op name — only the
    // NeuSight wiring may canonicalize.
    const eval::SimulatorOracle oracle;
    auto cache = std::make_shared<PredictionCache>(64);
    const CachedPredictor cached(oracle, cache);
    const auto &gpu = findGpu("A100-40GB");
    const KernelDesc fwd = gpusim::makeSoftmax(8192, 1024);
    KernelDesc bwd = fwd;
    bwd.opName = "softmax_bwd";
    EXPECT_DOUBLE_EQ(cached.predictKernelMs(fwd, gpu),
                     oracle.predictKernelMs(fwd, gpu));
    EXPECT_DOUBLE_EQ(cached.predictKernelMs(bwd, gpu),
                     oracle.predictKernelMs(bwd, gpu));
    EXPECT_EQ(cache->stats().misses, 2u); // Two entries, no merging.
}

/** Scaled-down trained framework shared by the cached-path tests. */
class CachedNeuSight : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setQuiet(true);
        dataset::SamplerConfig sampler;
        sampler.bmmSamples = 150;
        sampler.fcSamples = 120;
        sampler.elementwiseSamples = 80;
        sampler.softmaxSamples = 60;
        sampler.layernormSamples = 60;
        core::PredictorConfig cfg;
        cfg.hiddenDim = 16;
        cfg.hiddenLayers = 2;
        cfg.train.epochs = 3;
        framework = new core::NeuSight(cfg);
        framework->train(dataset::generateOperatorData(
            gpusim::nvidiaTrainingSet(), sampler));
    }

    static void
    TearDownTestSuite()
    {
        delete framework;
        framework = nullptr;
    }

    static graph::KernelGraph
    repeatedKernelGraph()
    {
        // Three distinct shapes, each dispatched four times — the
        // transformer pattern the cache exploits.
        graph::KernelGraph g;
        for (int layer = 0; layer < 4; ++layer) {
            const std::string base = "l" + std::to_string(layer);
            g.add(makeLinear(512, 768, 768), base + ".fc");
            g.add(makeLayerNorm(512, 768), base + ".ln");
            g.add(gpusim::makeElementwise("add", 512 * 768), base + ".add");
        }
        return g;
    }

    static core::NeuSight *framework;
};

core::NeuSight *CachedNeuSight::framework = nullptr;

TEST_F(CachedNeuSight, CachedPathIsExactAndHits)
{
    const auto &gpu = findGpu("A100-40GB");
    const graph::KernelGraph g = repeatedKernelGraph();
    const double uncached = framework->predictGraphMs(g, gpu);

    auto cache = std::make_shared<PredictionCache>(256);
    framework->attachCache(cache);
    EXPECT_DOUBLE_EQ(framework->predictGraphMs(g, gpu), uncached);
    // 12 kernels, 3 distinct shapes: graph-level dedup folds the 9
    // intra-graph repeats before the cache is consulted, so the first
    // forecast is 3 misses and no hits...
    CacheStats stats = cache->stats();
    EXPECT_EQ(stats.misses, 3u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_DOUBLE_EQ(framework->predictGraphMs(g, gpu), uncached);
    // ...and a repeated forecast hits once per distinct shape.
    stats = cache->stats();
    EXPECT_EQ(stats.misses, 3u);
    EXPECT_EQ(stats.hits, 3u);
    framework->attachCache(nullptr);
    EXPECT_EQ(framework->predictionCache(), nullptr);
}

TEST_F(CachedNeuSight, ConcurrentGraphForecastsAgree)
{
    // The serving scenario: many workers forecasting through one shared
    // framework + cache must all see the single-threaded answer.
    const auto &gpu = findGpu("H100");
    const graph::KernelGraph g = repeatedKernelGraph();
    const double expected = framework->predictGraphMs(g, gpu);
    auto cache = std::make_shared<PredictionCache>(256);
    framework->attachCache(cache);
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < 50; ++i)
                if (framework->predictGraphMs(g, gpu) != expected)
                    mismatches.fetch_add(1);
        });
    for (std::thread &t : threads)
        t.join();
    framework->attachCache(nullptr);
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(RequestFingerprint, IgnoresTagDiscriminatesSemantics)
{
    ForecastRequest a;
    a.kind = RequestKind::Inference;
    a.model = "GPT3-XL";
    a.batch = 4;
    a.gpu = findGpu("H100");
    a.tag = "first";
    ForecastRequest b = a;
    b.tag = "second";
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.batch = 8;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    b = a;
    b.kind = RequestKind::Training;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

/** Deterministic predictor that counts graph forecasts and stalls. */
class SlowCountingPredictor : public graph::LatencyPredictor
{
  public:
    explicit SlowCountingPredictor(int delay_ms) : delayMs(delay_ms) {}

    std::string name() const override { return "SlowCounting"; }

    double
    predictKernelMs(const gpusim::KernelDesc &,
                    const gpusim::GpuSpec &) const override
    {
        return 0.5;
    }

    double
    predictGraphMs(const graph::KernelGraph &g,
                   const gpusim::GpuSpec &gpu) const override
    {
        calls.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(delayMs));
        return graph::LatencyPredictor::predictGraphMs(g, gpu);
    }

    mutable std::atomic<int> calls{0};

  private:
    int delayMs;
};

ForecastRequest
smallInferenceRequest(uint64_t batch, const std::string &tag)
{
    ForecastRequest req;
    req.kind = RequestKind::Inference;
    req.model = "BERT-Large";
    req.batch = batch;
    req.gpu = findGpu("A100-40GB");
    req.tag = tag;
    return req;
}

TEST(Server, CoalescesIdenticalInFlightRequests)
{
    const SlowCountingPredictor predictor(40);
    ServerOptions options;
    options.workers = 2;
    ForecastServer server(predictor, options);

    constexpr int kClients = 12;
    std::vector<std::future<ForecastResult>> futures;
    for (int i = 0; i < kClients; ++i) {
        ForecastRequest req =
            smallInferenceRequest(4, "c" + std::to_string(i));
        // Naming the default backend explicitly must coalesce with
        // the spelled-out-by-omission requests.
        if (i % 2 == 1)
            req.backend =
                server.forecastEngine()->defaultBackendName();
        futures.push_back(server.submit(std::move(req)));
    }
    int coalesced = 0;
    double latency = -1.0;
    for (int i = 0; i < kClients; ++i) {
        const ForecastResult result = futures[i].get();
        ASSERT_TRUE(result.ok) << result.error;
        EXPECT_EQ(result.tag, "c" + std::to_string(i));
        if (latency < 0.0)
            latency = result.latencyMs;
        EXPECT_DOUBLE_EQ(result.latencyMs, latency);
        coalesced += result.coalesced ? 1 : 0;
    }
    server.stop();
    // Every client got the answer, but the predictor ran far fewer
    // times than kClients; the exact split depends on scheduling.
    EXPECT_EQ(predictor.calls.load() + coalesced, kClients);
    EXPECT_LE(predictor.calls.load(), 3);
    EXPECT_EQ(server.stats().coalesced, static_cast<uint64_t>(coalesced));
}

TEST(Server, DrainsEveryAcceptedRequestOnShutdown)
{
    const SlowCountingPredictor predictor(5);
    ServerOptions options;
    options.workers = 2;
    ForecastServer server(predictor, options);

    constexpr int kRequests = 24;
    std::vector<std::future<ForecastResult>> futures;
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(server.submit(smallInferenceRequest(
            static_cast<uint64_t>(i + 1), "d" + std::to_string(i))));
    server.stop(); // Immediately: must still answer all 24.
    for (auto &future : futures) {
        ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        const ForecastResult result = future.get();
        EXPECT_TRUE(result.ok) << result.error;
        EXPECT_GT(result.latencyMs, 0.0);
    }
    EXPECT_EQ(server.stats().completed,
              static_cast<uint64_t>(kRequests));

    // After shutdown new submissions resolve immediately as rejected.
    const ForecastResult rejected =
        server.submit(smallInferenceRequest(1, "late")).get();
    EXPECT_FALSE(rejected.ok);
    EXPECT_EQ(server.stats().rejected, 1u);
}

TEST(Server, HighPriorityDrainsFirst)
{
    const SlowCountingPredictor predictor(30);
    ServerOptions options;
    options.workers = 1;
    ForecastServer server(predictor, options);

    // Occupy the single worker so the next four requests sit queued
    // together when it makes its next dispatch decision.
    std::future<ForecastResult> blocker =
        server.submit(smallInferenceRequest(1, "blocker"));
    while (predictor.calls.load() < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    std::mutex order_mutex;
    std::vector<std::string> order;
    const auto record = [&](ForecastResult result) {
        EXPECT_TRUE(result.ok) << result.error;
        std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(result.tag);
    };
    const auto enqueue = [&](uint64_t batch, const std::string &tag,
                             RequestPriority priority) {
        ForecastRequest req = smallInferenceRequest(batch, tag);
        req.priority = priority;
        EXPECT_TRUE(server.trySubmit(std::move(req), record));
    };
    // Normals enter first; the highs must still drain before them,
    // FIFO within each class.
    enqueue(2, "n1", RequestPriority::Normal);
    enqueue(3, "n2", RequestPriority::Normal);
    enqueue(4, "h1", RequestPriority::High);
    enqueue(5, "h2", RequestPriority::High);
    server.drain();
    server.stop();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], "h1");
    EXPECT_EQ(order[1], "h2");
    EXPECT_EQ(order[2], "n1");
    EXPECT_EQ(order[3], "n2");
    EXPECT_TRUE(blocker.get().ok);
}

TEST(Server, ReportsFailuresWithoutDying)
{
    const SlowCountingPredictor predictor(0);
    ForecastServer server(predictor, ServerOptions{});
    ForecastRequest bad = smallInferenceRequest(1, "bad");
    bad.model = "NoSuchModel";
    const ForecastResult result = server.submit(bad).get();
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("NoSuchModel"), std::string::npos);
    // The server stays serviceable after a failed request.
    EXPECT_TRUE(server.submit(smallInferenceRequest(1, "ok")).get().ok);
}

TEST(Server, DistributedRequestsMatchDirectForecast)
{
    const eval::SimulatorOracle oracle;
    ForecastRequest req;
    req.kind = RequestKind::Distributed;
    req.model = "GPT2-Large";
    req.gpu = findGpu("H100");
    req.numGpus = 4;
    req.globalBatch = 8;
    req.strategy = dist::Parallelism::Tensor;

    ForecastServer server(oracle, ServerOptions{});
    const ForecastResult result = server.submit(req).get();
    ASSERT_TRUE(result.ok) << result.error;

    // Same forecast as calling the dist layer directly with the
    // server's default collective estimator.
    const dist::EstimatedCollectives comms("A100-NVLink", 600.0);
    dist::ServerConfig config;
    config.setGpu(req.gpu);
    config.numGpus = req.numGpus;
    const dist::DistributedResult direct = dist::distributedTrainingMs(
        oracle, comms, config, graph::findModel(req.model),
        req.globalBatch, req.strategy);
    EXPECT_DOUBLE_EQ(result.latencyMs, direct.latencyMs);
    EXPECT_DOUBLE_EQ(result.commBytes, direct.commBytes);
    EXPECT_FALSE(result.oom);
}

TEST(Server, DistributedValidationRejectsCleanly)
{
    const eval::SimulatorOracle oracle;
    ForecastRequest req;
    req.kind = RequestKind::Distributed;
    req.model = "GPT2-Large"; // 20 heads: indivisible by 3.
    req.gpu = findGpu("H100");
    req.numGpus = 3;
    req.globalBatch = 6;
    req.strategy = dist::Parallelism::Tensor;
    ForecastServer server(oracle, ServerOptions{});
    const ForecastResult result = server.submit(req).get();
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("divisible"), std::string::npos);
}

TEST(Wire, RequestRoundTrip)
{
    const std::string line =
        "{\"op\":\"distributed\",\"model\":\"GPT2-Large\","
        "\"gpu\":\"H100\",\"num_gpus\":4,\"global_batch\":16,"
        "\"strategy\":\"pipeline\",\"micro_batches\":4,"
        "\"schedule\":\"1f1b\",\"tag\":\"t1\"}";
    const ForecastRequest req =
        requestFromJson(common::Json::parse(line));
    EXPECT_EQ(req.kind, RequestKind::Distributed);
    EXPECT_EQ(req.model, "GPT2-Large");
    EXPECT_EQ(req.gpu.name, "H100");
    EXPECT_EQ(req.numGpus, 4);
    EXPECT_EQ(req.globalBatch, 16u);
    EXPECT_EQ(req.strategy, dist::Parallelism::Pipeline);
    EXPECT_EQ(req.pipeline.numMicroBatches, 4);
    EXPECT_EQ(req.pipeline.schedule, dist::PipelineSchedule::OneFOneB);
    EXPECT_EQ(req.tag, "t1");

    // Encode → decode is identity on the request's semantics.
    const ForecastRequest again = requestFromJson(requestToJson(req));
    EXPECT_EQ(again.fingerprint(), req.fingerprint());
}

TEST(Wire, DecodeNeedsPastAndRejectsUnknownOp)
{
    EXPECT_THROW(requestFromJson(common::Json::parse(
                     "{\"op\":\"decode\",\"model\":\"GPT3-XL\","
                     "\"gpu\":\"H100\"}")),
                 std::runtime_error);
    EXPECT_THROW(requestFromJson(common::Json::parse(
                     "{\"op\":\"explode\",\"model\":\"GPT3-XL\","
                     "\"gpu\":\"H100\"}")),
                 std::runtime_error);
}

TEST(Wire, ResultSerializesForecastAndCacheCounters)
{
    ForecastResult result;
    result.tag = "t9";
    result.latencyMs = 12.5;
    result.kernelCount = 42;
    result.serviceMicros = 310.0;
    result.cache.hits = 30;
    result.cache.misses = 12;
    const common::Json json = resultToJson(result);
    EXPECT_TRUE(json.at("ok").asBool());
    EXPECT_DOUBLE_EQ(json.at("latency_ms").asDouble(), 12.5);
    EXPECT_EQ(json.at("kernels").asInt(), 42);
    EXPECT_DOUBLE_EQ(json.at("cache_hit_rate").asDouble(), 30.0 / 42.0);
    EXPECT_EQ(json.at("tag").asString(), "t9");

    ForecastResult error;
    error.ok = false;
    error.error = "boom";
    const common::Json ejson = resultToJson(error);
    EXPECT_FALSE(ejson.at("ok").asBool());
    EXPECT_EQ(ejson.at("error").asString(), "boom");
}

TEST(Wire, StatsOpRoundTripsRegistrySnapshot)
{
    // The stats op needs no model/gpu fields and survives the encode →
    // decode round trip.
    const ForecastRequest req = requestFromJson(
        common::Json::parse("{\"op\":\"stats\",\"tag\":\"s1\"}"));
    EXPECT_EQ(req.kind, RequestKind::Stats);
    EXPECT_EQ(req.tag, "s1");
    const ForecastRequest again = requestFromJson(requestToJson(req));
    EXPECT_EQ(again.kind, RequestKind::Stats);
    EXPECT_EQ(again.tag, "s1");
    // Snapshots are point-in-time: distinct tags must never coalesce.
    ForecastRequest other = req;
    other.tag = "s2";
    EXPECT_NE(req.fingerprint(), other.fingerprint());

    // End-to-end: a served stats request answers with the engine's
    // metrics-registry snapshot instead of a forecast.
    const SlowCountingPredictor predictor(1);
    ServerOptions options;
    options.workers = 1;
    ForecastServer server(predictor, options);
    ASSERT_TRUE(server.submit(smallInferenceRequest(2, "warm")).get().ok);
    ForecastRequest stats_req;
    stats_req.kind = RequestKind::Stats;
    stats_req.tag = "s3";
    const ForecastResult result =
        server.submit(std::move(stats_req)).get();
    server.stop();
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_FALSE(result.payload.empty());

    const common::Json json = resultToJson(result);
    EXPECT_EQ(json.at("tag").asString(), "s3");
    EXPECT_FALSE(json.has("latency_ms"));
    const common::Json &snap = json.at("stats");
    EXPECT_GE(snap.at("serve.submitted").asInt(), 2);
    EXPECT_GE(snap.at("engine.requests").asInt(), 2);
    EXPECT_TRUE(snap.at("serve.e2e_us").at("count").isNumber());
}

TEST(GraphCache, LruEvictionAndPromotion)
{
    ModelGraphCache cache(2);
    const auto make = [](size_t nodes) {
        graph::KernelGraph g;
        for (size_t i = 0; i < nodes; ++i)
            g.add(makeLinear(64, 64, 64), "n" + std::to_string(i));
        return std::make_shared<const graph::KernelGraph>(std::move(g));
    };
    EXPECT_EQ(cache.lookup("a"), nullptr);
    cache.insert("a", make(1));
    cache.insert("b", make(2));
    // Promote "a", insert "c": "b" is now the LRU victim.
    ASSERT_NE(cache.lookup("a"), nullptr);
    cache.insert("c", make(3));
    EXPECT_EQ(cache.lookup("b"), nullptr);
    ASSERT_NE(cache.lookup("a"), nullptr);
    EXPECT_EQ(cache.lookup("a")->computeNodeCount(), 1u);
    ASSERT_NE(cache.lookup("c"), nullptr);
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.size, 2u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.inserts, 3u);
}

TEST(GraphCache, GetOrBuildBuildsOncePerKey)
{
    ModelGraphCache cache(8);
    int builds = 0;
    const auto build = [&] {
        ++builds;
        graph::KernelGraph g;
        g.add(makeLinear(8, 8, 8), "n");
        return g;
    };
    const auto first = cache.getOrBuild("k", build);
    const auto second = cache.getOrBuild("k", build);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(first.get(), second.get());
}

TEST(Server, ModelGraphCacheServesRepeatedRequests)
{
    const eval::SimulatorOracle oracle;
    ForecastServer server(oracle, ServerOptions{});
    ASSERT_NE(server.modelGraphCache(), nullptr);

    // Two distinct requests sharing (kind, model, batch, dtype) but
    // differing in tag and GPU: the graph is GPU-independent, so the
    // second is a graph-cache hit — and the forecasts still differ.
    ForecastRequest a = smallInferenceRequest(4, "a100");
    ForecastRequest b = smallInferenceRequest(4, "h100");
    b.gpu = findGpu("H100");
    const ForecastResult ra = server.submit(a).get();
    const ForecastResult rb = server.submit(b).get();
    ASSERT_TRUE(ra.ok);
    ASSERT_TRUE(rb.ok);
    EXPECT_NE(ra.latencyMs, rb.latencyMs);
    EXPECT_EQ(ra.kernelCount, rb.kernelCount);
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.graphCache.misses, 1u);
    EXPECT_GE(stats.graphCache.hits, 1u);

    // A different batch is a different graph.
    ASSERT_TRUE(server.submit(smallInferenceRequest(8, "b8")).get().ok);
    EXPECT_EQ(server.stats().graphCache.misses, 2u);
}

TEST(Server, GraphCacheCanBeDisabled)
{
    const eval::SimulatorOracle oracle;
    ServerOptions options;
    options.graphCacheCapacity = 0;
    ForecastServer server(oracle, options);
    EXPECT_EQ(server.modelGraphCache(), nullptr);
    EXPECT_TRUE(server.submit(smallInferenceRequest(2, "x")).get().ok);
    EXPECT_EQ(server.stats().graphCache.hits, 0u);
}

/** Constant-latency predictor for the multi-backend tests. */
class ConstantPredictor : public graph::LatencyPredictor
{
  public:
    explicit ConstantPredictor(double kernel_ms) : kernelMs(kernel_ms) {}

    std::string name() const override { return "Constant"; }

    double
    predictKernelMs(const gpusim::KernelDesc &,
                    const gpusim::GpuSpec &) const override
    {
        return kernelMs;
    }

  private:
    double kernelMs;
};

TEST(Server, ServesTwoBackendsSideBySideInOneProcess)
{
    // The acceptance scenario of the API redesign: one ForecastServer
    // answers wire requests against two distinct registered predictors
    // in the same process, selected per request by the wire "backend"
    // field, with per-backend-correct caching inside one shared cache.
    const ConstantPredictor fast(1.0);
    const ConstantPredictor slow(3.0);
    auto registry = std::make_shared<api::PredictorRegistry>();
    registry->addExternal("fast", fast);
    registry->addExternal("slow", slow);
    api::EngineConfig config;
    config.defaultBackend = "fast";
    config.registry = registry;
    config.cacheCapacity = 4096;
    auto engine = std::make_shared<api::ForecastEngine>(std::move(config));

    ServerOptions options;
    options.workers = 2;
    options.cache = engine->predictionCache();
    ForecastServer server(engine, options);

    // Both arrive over the wire, as a client would send them.
    const ForecastRequest on_default = requestFromJson(common::Json::parse(
        "{\"op\":\"inference\",\"model\":\"BERT-Large\",\"batch\":2,"
        "\"gpu\":\"V100\",\"tag\":\"fast\"}"));
    const ForecastRequest on_slow = requestFromJson(common::Json::parse(
        "{\"op\":\"inference\",\"model\":\"BERT-Large\",\"batch\":2,"
        "\"gpu\":\"V100\",\"backend\":\"slow\",\"tag\":\"slow\"}"));
    // Same workload, different backend: semantically different
    // forecasts, so they must never coalesce.
    EXPECT_NE(on_default.fingerprint(), on_slow.fingerprint());

    const ForecastResult fast_result = server.submit(on_default).get();
    const ForecastResult slow_result = server.submit(on_slow).get();
    ASSERT_TRUE(fast_result.ok) << fast_result.error;
    ASSERT_TRUE(slow_result.ok) << slow_result.error;
    EXPECT_EQ(fast_result.tag, "fast");
    EXPECT_EQ(slow_result.tag, "slow");
    EXPECT_DOUBLE_EQ(slow_result.latencyMs, 3.0 * fast_result.latencyMs);
    EXPECT_EQ(fast_result.kernelCount, slow_result.kernelCount);

    // Re-asking each backend hits its own scoped cache entries and
    // still answers its own numbers — the shared cache never crosses
    // the two backends' forecasts.
    const serve::CacheStats before = engine->cacheStats();
    EXPECT_DOUBLE_EQ(server.submit(on_default).get().latencyMs,
                     fast_result.latencyMs);
    EXPECT_DOUBLE_EQ(server.submit(on_slow).get().latencyMs,
                     slow_result.latencyMs);
    const serve::CacheStats after = engine->cacheStats();
    EXPECT_GT(after.hits, before.hits);
    EXPECT_EQ(after.misses, before.misses);

    server.stop();
    EXPECT_EQ(server.stats().coalesced, 0u);
    EXPECT_EQ(server.stats().completed, 4u);
}

TEST(Wire, BackendFieldRoundTripsAndAliases)
{
    const ForecastRequest req = requestFromJson(common::Json::parse(
        "{\"op\":\"inference\",\"model\":\"GPT3-XL\",\"batch\":4,"
        "\"gpu\":\"H100\",\"backend\":\"oracle\"}"));
    EXPECT_EQ(req.backend, "oracle");
    const ForecastRequest again = requestFromJson(requestToJson(req));
    EXPECT_EQ(again.backend, "oracle");
    EXPECT_EQ(again.fingerprint(), req.fingerprint());

    // "predictor" is an accepted alias for "backend"...
    const ForecastRequest aliased = requestFromJson(common::Json::parse(
        "{\"op\":\"inference\",\"model\":\"GPT3-XL\",\"batch\":4,"
        "\"gpu\":\"H100\",\"predictor\":\"oracle\"}"));
    EXPECT_EQ(aliased.fingerprint(), req.fingerprint());
    // ...but contradicting values are rejected.
    EXPECT_THROW(requestFromJson(common::Json::parse(
                     "{\"op\":\"inference\",\"model\":\"GPT3-XL\","
                     "\"gpu\":\"H100\",\"backend\":\"a\","
                     "\"predictor\":\"b\"}")),
                 std::runtime_error);

    // The backend is part of the request's semantics.
    ForecastRequest plain = req;
    plain.backend.clear();
    EXPECT_NE(plain.fingerprint(), req.fingerprint());
}

TEST(Wire, HybridAndSweepRequestsRoundTrip)
{
    const ForecastRequest hybrid = requestFromJson(common::Json::parse(
        "{\"op\":\"hybrid\",\"model\":\"GPT2-Large\",\"gpu\":\"H100\","
        "\"global_batch\":16,\"tp\":2,\"dp\":2,\"micro_batches\":2,"
        "\"recompute\":true}"));
    EXPECT_EQ(hybrid.kind, RequestKind::Hybrid);
    EXPECT_EQ(hybrid.hybrid.tpDegree, 2);
    EXPECT_EQ(hybrid.hybrid.ppDegree, 1);
    EXPECT_EQ(hybrid.hybrid.dpDegree, 2);
    // num_gpus defaults to the product of the degrees.
    EXPECT_EQ(hybrid.numGpus, 4);
    EXPECT_TRUE(hybrid.hybrid.recomputeActivations);
    const ForecastRequest hybrid_again =
        requestFromJson(requestToJson(hybrid));
    EXPECT_EQ(hybrid_again.fingerprint(), hybrid.fingerprint());

    const ForecastRequest sweep = requestFromJson(common::Json::parse(
        "{\"op\":\"sweep\",\"model\":\"GPT2-Large\",\"gpu\":\"H100\","
        "\"num_gpus\":4,\"global_batch\":8}"));
    EXPECT_EQ(sweep.kind, RequestKind::HybridSweep);
    EXPECT_EQ(sweep.numGpus, 4);
    EXPECT_EQ(sweep.globalBatch, 8u);
    const ForecastRequest sweep_again =
        requestFromJson(requestToJson(sweep));
    EXPECT_EQ(sweep_again.fingerprint(), sweep.fingerprint());
    EXPECT_NE(sweep.fingerprint(), hybrid.fingerprint());
}

TEST(Wire, SimulateOpAndPriorityRoundTrip)
{
    const ForecastRequest req = requestFromJson(common::Json::parse(
        "{\"op\":\"simulate\",\"model\":\"GPT2-Large\",\"gpu\":\"H100\","
        "\"global_batch\":16,\"pp\":4,\"micro_batches\":8,"
        "\"schedule\":\"zero-bubble\",\"jitter\":0.1,\"seed\":7,"
        "\"priority\":\"high\"}"));
    EXPECT_EQ(req.kind, RequestKind::Simulate);
    EXPECT_EQ(req.hybrid.ppDegree, 4);
    EXPECT_EQ(req.hybrid.schedule, dist::PipelineSchedule::ZeroBubble);
    EXPECT_DOUBLE_EQ(req.jitterFraction, 0.1);
    EXPECT_EQ(req.simSeed, 7u);
    EXPECT_EQ(req.priority, RequestPriority::High);
    const ForecastRequest again = requestFromJson(requestToJson(req));
    EXPECT_EQ(again.fingerprint(), req.fingerprint());
    EXPECT_EQ(again.priority, RequestPriority::High);

    // The jitter stream is part of the forecast's identity; the
    // priority class is not (coalescing ignores it).
    ForecastRequest other_seed = req;
    other_seed.simSeed = 8;
    EXPECT_NE(other_seed.fingerprint(), req.fingerprint());
    ForecastRequest other_priority = req;
    other_priority.priority = RequestPriority::Normal;
    EXPECT_EQ(other_priority.fingerprint(), req.fingerprint());

    // The closed-form op cannot price the zero-bubble schedule; the
    // wire layer rejects the combination up front.
    EXPECT_THROW(requestFromJson(common::Json::parse(
                     "{\"op\":\"hybrid\",\"model\":\"GPT2-Large\","
                     "\"gpu\":\"H100\",\"global_batch\":16,\"pp\":4,"
                     "\"micro_batches\":8,"
                     "\"schedule\":\"zero-bubble\"}")),
                 std::runtime_error);
}

TEST(Server, SimulateRequestsMatchDirectSimulation)
{
    const eval::SimulatorOracle oracle;
    ForecastRequest req;
    req.kind = RequestKind::Simulate;
    req.model = "GPT2-Large";
    req.gpu = findGpu("A100-40GB");
    req.numGpus = 4;
    req.globalBatch = 8;
    req.hybrid.ppDegree = 4;
    req.hybrid.numMicroBatches = 8;
    req.hybrid.schedule = dist::PipelineSchedule::ZeroBubble;

    ForecastServer server(oracle, ServerOptions{});
    const ForecastResult result = server.submit(req).get();
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.strategy, req.hybrid.describe());

    const dist::EstimatedCollectives comms("A100-NVLink", 600.0);
    dist::ServerConfig config;
    config.setGpu(req.gpu);
    config.numGpus = req.numGpus;
    const sim::SimResult direct = sim::simulateHybrid(
        oracle, comms, config, graph::findModel(req.model),
        req.globalBatch, req.hybrid);
    EXPECT_DOUBLE_EQ(result.latencyMs, direct.hybrid.latencyMs);
    EXPECT_DOUBLE_EQ(result.bubbleMs, direct.hybrid.bubbleMs);
}

TEST(Server, HybridRequestsMatchDirectForecast)
{
    const eval::SimulatorOracle oracle;
    ForecastRequest req;
    req.kind = RequestKind::Hybrid;
    req.model = "GPT2-Large";
    req.gpu = findGpu("H100");
    req.numGpus = 4;
    req.globalBatch = 8;
    req.hybrid.tpDegree = 2;
    req.hybrid.dpDegree = 2;
    req.hybrid.numMicroBatches = 2;

    ForecastServer server(oracle, ServerOptions{});
    const ForecastResult result = server.submit(req).get();
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.strategy, req.hybrid.describe());

    const dist::EstimatedCollectives comms("A100-NVLink", 600.0);
    dist::ServerConfig config;
    config.setGpu(req.gpu);
    config.numGpus = req.numGpus;
    const dist::HybridResult direct = dist::hybridTrainingMs(
        oracle, comms, config, graph::findModel(req.model),
        req.globalBatch, req.hybrid);
    EXPECT_DOUBLE_EQ(result.latencyMs, direct.latencyMs);
    EXPECT_DOUBLE_EQ(result.commBytes, direct.commBytes);
}

TEST(Server, StopSubmitRaceAlwaysResolvesAndNeverCorruptsDepth)
{
    // Hammer the submit/stop race: every submit must resolve (a result
    // or a deterministic rejection), never hang or enqueue into a dead
    // pool, and the queue-depth gauge must end at exactly zero (it is
    // only ever set to queue.size(), so underflow would show up as a
    // huge positive value here). Run under TSan to pin the locking.
    for (int round = 0; round < 4; ++round) {
        const SlowCountingPredictor predictor(1);
        ServerOptions options;
        options.workers = 2;
        options.queueCapacity = 4;
        ForecastServer server(predictor, options);
        std::atomic<int> resolved{0};
        std::vector<std::thread> submitters;
        for (int t = 0; t < 4; ++t) {
            submitters.emplace_back([&server, &resolved, t] {
                for (int i = 0; i < 16; ++i) {
                    const ForecastResult result =
                        server
                            .submit(smallInferenceRequest(
                                static_cast<uint64_t>(t * 16 + i + 1),
                                "h" + std::to_string(t * 16 + i)))
                            .get();
                    EXPECT_TRUE(result.ok || !result.error.empty());
                    resolved.fetch_add(1);
                }
            });
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        server.stop(); // Races the submitters by design.
        for (std::thread &t : submitters)
            t.join();
        EXPECT_EQ(resolved.load(), 64);

        // Submit-after-stop is a deterministic immediate rejection —
        // even when identical work is technically still coalescable.
        const ForecastResult late =
            server.submit(smallInferenceRequest(1, "late")).get();
        EXPECT_FALSE(late.ok);
        EXPECT_NE(late.error.find("shutting down"), std::string::npos);

        EXPECT_EQ(server.stats().queueDepth, 0u);
        EXPECT_EQ(server.metrics()->gauge("serve.queue_depth")->value(),
                  0);
        EXPECT_EQ(server.stats().completed + server.stats().rejected,
                  server.stats().submitted);
    }
}

TEST(Server, TrySubmitBackpressureAndShutdownSemantics)
{
    const SlowCountingPredictor predictor(20);
    ServerOptions options;
    options.workers = 1;
    options.queueCapacity = 1;
    ForecastServer server(predictor, options);

    std::atomic<int> done{0};
    const auto completion = [&done](ForecastResult) {
        done.fetch_add(1);
    };
    // Slot 1 starts executing, slot 2 queues; a third DISTINCT request
    // must bounce (queue full), while an identical-to-queued request
    // still piggybacks (coalescing never needs a slot).
    ASSERT_TRUE(server.trySubmit(smallInferenceRequest(1, "a"),
                                 completion));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(server.trySubmit(smallInferenceRequest(2, "b"),
                                 completion));
    EXPECT_FALSE(server.trySubmit(smallInferenceRequest(3, "c"),
                                  completion));
    EXPECT_TRUE(server.trySubmit(smallInferenceRequest(2, "b2"),
                                 completion));
    server.drain();
    EXPECT_EQ(done.load(), 3);

    // After stop(): accepted, answered inline as a rejection.
    server.stop();
    bool rejected = false;
    EXPECT_TRUE(server.trySubmit(
        smallInferenceRequest(4, "late"), [&rejected](ForecastResult r) {
            rejected = !r.ok;
        }));
    EXPECT_TRUE(rejected);
}

TEST(Wire, ScriptReaderSkipsBlanksAndComments)
{
    std::istringstream script(
        "# warmup\n"
        "\n"
        "{\"op\":\"inference\",\"model\":\"GPT3-XL\",\"batch\":4,"
        "\"gpu\":\"H100\"}\n"
        "  {\"op\":\"training\",\"model\":\"BERT-Large\",\"batch\":8,"
        "\"gpu\":\"V100\"}\n");
    const auto requests = readRequestScript(script);
    ASSERT_EQ(requests.size(), 2u);
    EXPECT_EQ(requests[0].kind, RequestKind::Inference);
    EXPECT_EQ(requests[1].kind, RequestKind::Training);
    EXPECT_EQ(requests[1].gpu.name, "V100");
}

} // namespace
} // namespace neusight::serve
