/**
 * @file
 * Tests for the fp32 SIMD inference lane and the lock-free prediction-
 * cache read path: MatrixF32/linearF32 numeric parity with the double
 * kernels, Mlp::inferRowsF32 against inferRows, predictor-level f32 vs
 * f64 forecasts within 1e-4 relative, engine-level parity across
 * inference/training/hybrid requests, lane round-trip losslessness for
 * f64, and cache value integrity under a concurrent mixed read/write
 * hammer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "common/rng.hpp"
#include "core/predictor.hpp"
#include "dataset/dataset.hpp"
#include "graph/models.hpp"
#include "nn/module.hpp"
#include "serve/prediction_cache.hpp"
#include "tensor/matrix.hpp"

namespace neusight::core {
namespace {

using gpusim::KernelDesc;
using gpusim::OpType;

/** Relative gap, robust near zero. */
double
relGap(double a, double b)
{
    return std::abs(a - b) / std::max({std::abs(a), std::abs(b), 1e-12});
}

TEST(MatrixF32, RoundTripsWithinSinglePrecision)
{
    Rng rng(11);
    Matrix m(13, 7);
    for (size_t i = 0; i < m.size(); ++i)
        m.raw()[i] = rng.normal(0.0, 10.0);
    const MatrixF32 narrow = MatrixF32::fromMatrix(m);
    const Matrix wide = narrow.toMatrix();
    ASSERT_EQ(wide.rows(), m.rows());
    ASSERT_EQ(wide.cols(), m.cols());
    for (size_t i = 0; i < m.size(); ++i)
        EXPECT_EQ(wide.raw()[i],
                  static_cast<double>(static_cast<float>(m.raw()[i])));
}

TEST(MatrixF32, LinearF32MatchesDoubleKernelWithinTolerance)
{
    // y = x * w + b (+ relu) in fp32 against the double reference,
    // elementwise relative 1e-5 — plenty for a 64-wide accumulation.
    Rng rng(23);
    const size_t m = 9, k = 64, n = 33;
    Matrix x(m, k), w(k, n), b(1, n);
    for (size_t i = 0; i < x.size(); ++i)
        x.raw()[i] = rng.normal(0.0, 1.0);
    for (size_t i = 0; i < w.size(); ++i)
        w.raw()[i] = rng.normal(0.0, 0.5);
    for (size_t i = 0; i < b.size(); ++i)
        b.raw()[i] = rng.normal(0.0, 0.2);

    for (bool relu : {false, true}) {
        const MatrixF32 y32 =
            linearF32(MatrixF32::fromMatrix(x), MatrixF32::fromMatrix(w),
                      MatrixF32::fromMatrix(b), relu);
        ASSERT_EQ(y32.rows(), m);
        ASSERT_EQ(y32.cols(), n);
        for (size_t i = 0; i < m; ++i) {
            for (size_t j = 0; j < n; ++j) {
                double ref = b.at(0, j);
                // Error scales with the accumulated magnitude, not the
                // (possibly cancelled-to-zero) result.
                double scale = std::abs(b.at(0, j));
                for (size_t p = 0; p < k; ++p) {
                    ref += x.at(i, p) * w.at(p, j);
                    scale += std::abs(x.at(i, p) * w.at(p, j));
                }
                if (relu)
                    ref = ref > 0.0 ? ref : 0.0;
                EXPECT_LT(std::abs(static_cast<double>(y32.at(i, j)) -
                                   ref),
                          1e-5 * std::max(scale, 1.0))
                    << "relu=" << relu << " (" << i << "," << j << ")";
            }
        }
    }
}

TEST(MlpF32, InferRowsF32TracksDoubleLane)
{
    nn::MlpConfig cfg;
    cfg.inputDim = 5;
    cfg.hiddenDim = 48;
    cfg.hiddenLayers = 6;
    cfg.outputDim = 2;
    cfg.seed = 99;
    nn::Mlp mlp(cfg);
    EXPECT_FALSE(mlp.f32Ready());
    mlp.syncF32();
    ASSERT_TRUE(mlp.f32Ready());

    Rng rng(1234);
    Matrix x(64, cfg.inputDim);
    for (size_t i = 0; i < x.size(); ++i)
        x.raw()[i] = rng.normal(0.0, 2.0);
    const Matrix ref = mlp.inferRows(x);
    const Matrix got =
        mlp.inferRowsF32(MatrixF32::fromMatrix(x)).toMatrix();
    ASSERT_EQ(got.rows(), ref.rows());
    ASSERT_EQ(got.cols(), ref.cols());
    for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_LT(relGap(got.raw()[i], ref.raw()[i]), 1e-4)
            << "element " << i;
}

/** Small trained framework shared by the forecast-level tests. */
class PrecisionLane : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        dataset::SamplerConfig sampler;
        sampler.bmmSamples = 400;
        sampler.fcSamples = 300;
        sampler.elementwiseSamples = 200;
        sampler.softmaxSamples = 150;
        sampler.layernormSamples = 150;
        config = new PredictorConfig;
        config->hiddenDim = 32;
        config->hiddenLayers = 4;
        config->train.epochs = 20;
        framework = new NeuSight(*config);
        framework->train(dataset::generateOperatorData(
            gpusim::nvidiaTrainingSet(), sampler));
    }

    static void
    TearDownTestSuite()
    {
        delete framework;
        framework = nullptr;
        delete config;
        config = nullptr;
    }

    static std::vector<KernelDesc>
    sampleKernels()
    {
        return {gpusim::makeBmm(4, 512, 512, 256),
                gpusim::makeLinear(2048, 768, 3072),
                gpusim::makeElementwise("gelu", 1 << 20),
                gpusim::makeSoftmax(4096, 512),
                gpusim::makeLayerNorm(4096, 1024),
                gpusim::makeMemoryOp("embedding", 1 << 24)};
    }

    static PredictorConfig *config;
    static NeuSight *framework;
};

PredictorConfig *PrecisionLane::config = nullptr;
NeuSight *PrecisionLane::framework = nullptr;

TEST_F(PrecisionLane, F32ForecastsWithin1e4OfF64)
{
    ASSERT_EQ(framework->precision(), KernelPredictor::Precision::F64);
    for (const char *gpu_name : {"A100-40GB", "H100"}) {
        const gpusim::GpuSpec &gpu = gpusim::findGpu(gpu_name);
        for (const KernelDesc &desc : sampleKernels()) {
            framework->setPrecision(KernelPredictor::Precision::F64);
            const double f64 = framework->predictKernelMs(desc, gpu);
            framework->setPrecision(KernelPredictor::Precision::F32);
            const double f32 = framework->predictKernelMs(desc, gpu);
            EXPECT_GT(f64, 0.0) << desc.summary();
            EXPECT_LT(relGap(f32, f64), 1e-4)
                << gpu_name << " " << desc.summary();
        }
    }
    framework->setPrecision(KernelPredictor::Precision::F64);
}

TEST_F(PrecisionLane, LaneRoundTripIsLosslessForF64)
{
    // Switching to f32 and back must leave the f64 lane bit-identical:
    // the f32 lane is a derived snapshot, never the master weights.
    const gpusim::GpuSpec &gpu = gpusim::findGpu("H100");
    const std::vector<KernelDesc> descs = sampleKernels();
    std::vector<double> before;
    for (const KernelDesc &desc : descs)
        before.push_back(framework->predictKernelMs(desc, gpu));
    framework->setPrecision(KernelPredictor::Precision::F32);
    for (const KernelDesc &desc : descs)
        framework->predictKernelMs(desc, gpu);
    framework->setPrecision(KernelPredictor::Precision::F64);
    for (size_t i = 0; i < descs.size(); ++i)
        EXPECT_EQ(framework->predictKernelMs(descs[i], gpu), before[i])
            << descs[i].summary();
}

TEST_F(PrecisionLane, BatchedF32MatchesSingleKernelF32)
{
    // The batched dedup path must stay self-consistent inside the f32
    // lane, exactly as it is in f64.
    framework->setPrecision(KernelPredictor::Precision::F32);
    const gpusim::GpuSpec &gpu = gpusim::findGpu("A100-40GB");
    const std::vector<KernelDesc> descs = sampleKernels();
    const std::vector<double> batched =
        framework->predictKernelsMs(descs, gpu);
    ASSERT_EQ(batched.size(), descs.size());
    for (size_t i = 0; i < descs.size(); ++i)
        EXPECT_EQ(batched[i], framework->predictKernelMs(descs[i], gpu))
            << descs[i].summary();
    framework->setPrecision(KernelPredictor::Precision::F64);
}

TEST_F(PrecisionLane, EngineLevelParityAcrossRequestKinds)
{
    // Two engines over the same trained weights (via a snapshot file),
    // one per lane; inference, training, and hybrid forecasts must
    // agree within 1e-4 relative.
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "neusight_precision_test.bin")
            .string();
    framework->save(path);
    const auto makeEngine = [&](const std::string &lane) {
        auto registry = std::make_shared<api::PredictorRegistry>();
        registry->add("neusight", [path = path] {
            auto p = std::make_unique<NeuSight>(*config);
            p->load(path);
            return p;
        });
        return std::make_unique<api::ForecastEngine>(
            api::EngineConfig().withRegistry(registry).precision(lane));
    };
    const auto f64_engine = makeEngine("f64");
    const auto f32_engine = makeEngine("f32");

    std::vector<api::ForecastRequest> requests;
    api::ForecastRequest req;
    req.model = "GPT2-Large";
    req.gpu = gpusim::findGpu("A100-40GB");
    req.kind = api::RequestKind::Inference;
    req.batch = 4;
    requests.push_back(req);
    req.kind = api::RequestKind::Training;
    req.batch = 2;
    requests.push_back(req);
    req.kind = api::RequestKind::Hybrid;
    req.numGpus = 4;
    req.globalBatch = 8;
    req.hybrid.tpDegree = 2;
    req.hybrid.ppDegree = 2;
    req.hybrid.dpDegree = 1;
    req.hybrid.numMicroBatches = 2;
    requests.push_back(req);

    for (const api::ForecastRequest &r : requests) {
        const api::ForecastResult a = f64_engine->forecast(r);
        const api::ForecastResult b = f32_engine->forecast(r);
        ASSERT_TRUE(a.ok) << a.error;
        ASSERT_TRUE(b.ok) << b.error;
        EXPECT_GT(a.latencyMs, 0.0);
        EXPECT_LT(relGap(b.latencyMs, a.latencyMs), 1e-4)
            << "kind " << static_cast<int>(r.kind);
    }
    std::filesystem::remove(path);
}

TEST(CacheHammer, MixedReadWriteKeepsValuesAndCountersConsistent)
{
    // Readers and writers race on a deliberately small cache (constant
    // eviction + refresh churn). Every hit must return the exact detail
    // derived from its key — a torn read, stale pointer, or cross-key
    // mixup fails the value check — and the global counters must
    // balance at the end.
    constexpr size_t kKeys = 256;
    constexpr size_t kCapacity = 64; // Forces eviction churn.
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 20000;

    const auto detailFor = [](size_t i) {
        core::PredictionDetail d;
        d.latencyMs = 1.0 + static_cast<double>(i);
        d.numWaves = 1 + i;
        d.alpha = 0.25 + static_cast<double>(i % 10);
        d.tileDims = {1 + i % 5, 2 + i % 3};
        return d;
    };

    serve::PredictionCache cache(kCapacity, 4);
    std::atomic<uint64_t> lookups{0};
    std::atomic<bool> torn{false};
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            uint64_t local_lookups = 0;
            core::PredictionDetail out;
            for (int i = 0; i < kOpsPerThread; ++i) {
                const size_t k =
                    (static_cast<size_t>(t) * 7919 + static_cast<size_t>(i)) %
                    kKeys;
                const std::string key = "hammer" + std::to_string(k);
                if (cache.lookup(key, out)) {
                    const core::PredictionDetail want = detailFor(k);
                    if (out.latencyMs != want.latencyMs ||
                        out.numWaves != want.numWaves ||
                        out.alpha != want.alpha ||
                        out.tileDims != want.tileDims)
                        torn.store(true);
                } else {
                    cache.insert(key, detailFor(k));
                }
                ++local_lookups;
            }
            lookups.fetch_add(local_lookups);
        });
    }
    for (std::thread &th : pool)
        th.join();

    EXPECT_FALSE(torn.load()) << "a hit returned a wrong/torn detail";
    const serve::CacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses, lookups.load());
    EXPECT_EQ(stats.inserts - stats.evictions, cache.size());
    EXPECT_LE(cache.size(), cache.capacity());
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.evictions, 0u);
}

} // namespace
} // namespace neusight::core
