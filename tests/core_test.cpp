/**
 * @file
 * Tests for the NeuSight core: Table-3 feature construction, the tile
 * database nearest-match semantics, the Eq. 1-8 prediction pipeline and
 * its physical bounds, fusion-aware prediction, the memory-bound
 * fallback, and framework serialization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "core/features.hpp"
#include "core/predictor.hpp"
#include "core/tile_db.hpp"
#include "gpusim/device.hpp"

namespace neusight::core {
namespace {

using gpusim::OpType;

/** Small shared corpus + trained framework (built once for the suite). */
class TrainedNeuSight : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        dataset::SamplerConfig sampler;
        sampler.bmmSamples = 500;
        sampler.fcSamples = 350;
        sampler.elementwiseSamples = 250;
        sampler.softmaxSamples = 150;
        sampler.layernormSamples = 150;
        corpus = new std::map<OpType, dataset::OperatorDataset>(
            dataset::generateOperatorData(gpusim::nvidiaTrainingSet(),
                                          sampler));
        PredictorConfig cfg;
        cfg.hiddenDim = 32;
        cfg.hiddenLayers = 4;
        cfg.train.epochs = 30;
        framework = new NeuSight(cfg);
        framework->train(*corpus);
    }

    static void
    TearDownTestSuite()
    {
        delete framework;
        delete corpus;
        framework = nullptr;
        corpus = nullptr;
    }

    static std::map<OpType, dataset::OperatorDataset> *corpus;
    static NeuSight *framework;
};

std::map<OpType, dataset::OperatorDataset> *TrainedNeuSight::corpus =
    nullptr;
NeuSight *TrainedNeuSight::framework = nullptr;

TEST(Features, MatchTable3Definitions)
{
    const gpusim::GpuSpec &gpu = gpusim::findGpu("V100");
    const auto desc = gpusim::makeBmm(2, 256, 256, 128);
    const gpusim::TileInfo tile =
        gpusim::TilePolicy::tileCosts(desc, {1, 128, 128});
    const uint64_t waves = 3;
    const auto f = buildFeatures(desc, tile, waves, gpu);
    ASSERT_EQ(f.size(), kNumFeatures);
    EXPECT_DOUBLE_EQ(f[0], tile.flopsPerTile / gpu.peakFlopsPerSm());
    EXPECT_DOUBLE_EQ(f[1], tile.memBytesPerTile / gpu.memBwPerSm());
    EXPECT_DOUBLE_EQ(f[2], 3.0 * tile.memBytesPerTile / gpu.l2BytesPerSm());
    EXPECT_DOUBLE_EQ(f[3],
                     3.0 * tile.memBytesPerTile / gpu.memBytesPerSm());
    EXPECT_DOUBLE_EQ(f[4],
                     (tile.flopsPerTile / tile.memBytesPerTile) /
                         (gpu.peakFlops() / gpu.memBwBytes()));
}

TEST(Features, UseTensorCorePeakForFp16)
{
    const gpusim::GpuSpec &h100 = gpusim::findGpu("H100");
    const auto fp32 = gpusim::makeBmm(1, 256, 256, 256);
    const auto fp16 =
        gpusim::makeBmm(1, 256, 256, 256, gpusim::DataType::Fp16, true);
    const gpusim::TileInfo t32 =
        gpusim::TilePolicy::tileCosts(fp32, {1, 128, 128});
    const gpusim::TileInfo t16 =
        gpusim::TilePolicy::tileCosts(fp16, {1, 128, 128});
    const auto f32 = buildFeatures(fp32, t32, 1, h100);
    const auto f16 = buildFeatures(fp16, t16, 1, h100);
    // Same FLOPs against a much higher peak: feature 0 shrinks.
    EXPECT_LT(f16[0], f32[0] / 10.0);
}

TEST(TileDb, ExactMatchRoundTrip)
{
    TileDatabase db;
    const auto desc = gpusim::makeBmm(4, 512, 512, 256);
    db.record(desc, {1, 128, 128}, gpusim::findGpu("V100"));
    EXPECT_EQ(db.lookup(desc, gpusim::findGpu("V100")),
              (std::vector<uint64_t>{1, 128, 128}));
    EXPECT_EQ(db.size(), 1u);
}

TEST(TileDb, NearestDimensionWins)
{
    TileDatabase db;
    const gpusim::GpuSpec &gpu = gpusim::findGpu("V100");
    db.record(gpusim::makeBmm(1, 64, 64, 64), {1, 32, 32}, gpu);
    db.record(gpusim::makeBmm(1, 2048, 2048, 512), {1, 128, 128}, gpu);
    EXPECT_EQ(db.lookup(gpusim::makeBmm(1, 1500, 1500, 400), gpu),
              (std::vector<uint64_t>{1, 128, 128}));
    EXPECT_EQ(db.lookup(gpusim::makeBmm(1, 80, 80, 64), gpu),
              (std::vector<uint64_t>{1, 32, 32}));
}

TEST(TileDb, GpuFeaturesBreakTies)
{
    TileDatabase db;
    const auto desc = gpusim::makeBmm(1, 512, 512, 512);
    db.record(desc, {1, 64, 64}, gpusim::findGpu("P4"));     // 40 SMs.
    db.record(desc, {1, 256, 128}, gpusim::findGpu("A100-40GB")); // 108.
    // H100 (132 SMs, 50 MB L2) is closer to the A100 entry.
    EXPECT_EQ(db.lookup(desc, gpusim::findGpu("H100")),
              (std::vector<uint64_t>{1, 256, 128}));
    // P100 (56 SMs, 4 MB L2) is closer to the P4 entry.
    EXPECT_EQ(db.lookup(desc, gpusim::findGpu("P100")),
              (std::vector<uint64_t>{1, 64, 64}));
}

TEST(TileDb, UnseenOpFallsBackToCompatibleRank)
{
    TileDatabase db;
    db.record(gpusim::makeElementwise("add", 10000, 2, 1.0), {2048},
              gpusim::findGpu("V100"));
    const auto dropout = gpusim::makeElementwise("dropout", 8000, 1, 1.0);
    EXPECT_EQ(db.lookup(dropout, gpusim::findGpu("V100")),
              (std::vector<uint64_t>{2048}));
}

TEST(TileDb, UnseenOpPrefersSameFamilyOverSameRank)
{
    // A rank-2 layernorm query must match layernorm records, not the
    // rank-2 fully-connected records, even when the FC dims are closer.
    TileDatabase db;
    const gpusim::GpuSpec &gpu = gpusim::findGpu("V100");
    db.record(gpusim::makeLinear(1024, 512, 1024), {128, 128}, gpu);
    db.record(gpusim::makeLayerNorm(8192, 2048), {2, 2048}, gpu);
    auto query = gpusim::makeLayerNorm(1024, 1024);
    query.opName = "some_new_rowwise_op";
    query.type = gpusim::OpType::LayerNorm;
    EXPECT_EQ(db.lookup(query, gpu), (std::vector<uint64_t>{2, 1024}));
}

TEST_F(TrainedNeuSight, BackwardKernelsMatchForwardFamilyTiles)
{
    // "layernorm_bwd" must resolve to layernorm records, yielding a
    // prediction close to the forward op's (same shape, similar cost).
    const gpusim::GpuSpec &gpu = gpusim::findGpu("A100-40GB");
    const auto fwd = gpusim::makeLayerNorm(8192, 1024);
    auto bwd = gpusim::makeLayerNorm(8192, 1024);
    bwd.opName = "layernorm_bwd";
    const double fwd_ms = framework->predictKernelMs(fwd, gpu);
    const double bwd_ms = framework->predictKernelMs(bwd, gpu);
    EXPECT_NEAR(bwd_ms, fwd_ms, fwd_ms * 0.05);
}

TEST(TileDb, LookupClampsTileToOutputExtent)
{
    TileDatabase db;
    db.record(gpusim::makeElementwise("add", 1 << 20, 2, 1.0), {4096},
              gpusim::findGpu("V100"));
    const auto tiny = gpusim::makeElementwise("add", 100, 2, 1.0);
    EXPECT_EQ(db.lookup(tiny, gpusim::findGpu("V100")),
              (std::vector<uint64_t>{100}));
}

TEST(TileDb, DuplicatesAreSuppressed)
{
    TileDatabase db;
    const auto desc = gpusim::makeSoftmax(4096, 1024);
    db.record(desc, {4, 1024}, gpusim::findGpu("T4"));
    db.record(desc, {4, 1024}, gpusim::findGpu("T4"));
    EXPECT_EQ(db.size(), 1u);
}

TEST(TileDb, EmptyDatabaseFails)
{
    TileDatabase db;
    EXPECT_THROW(db.lookup(gpusim::makeSoftmax(64, 64),
                           gpusim::findGpu("V100")),
                 std::runtime_error);
}

TEST(TileDb, SaveLoadRoundTrip)
{
    TileDatabase db;
    const gpusim::GpuSpec &gpu = gpusim::findGpu("A100-40GB");
    db.record(gpusim::makeBmm(2, 128, 256, 64), {1, 64, 128}, gpu);
    db.record(gpusim::makeSoftmax(8192, 512), {8, 512}, gpu);
    std::stringstream buf;
    db.save(buf);
    TileDatabase restored;
    restored.load(buf);
    EXPECT_EQ(restored.size(), db.size());
    EXPECT_EQ(restored.lookup(gpusim::makeBmm(2, 128, 256, 64), gpu),
              (std::vector<uint64_t>{1, 64, 128}));
}

TEST_F(TrainedNeuSight, UtilizationFloorComesFromCorpus)
{
    // Training must raise the floor above the hard minimum (the corpus
    // never contains near-zero utilizations) while keeping it a fraction.
    KernelPredictor pred(OpType::Elementwise, PredictorConfig{});
    dataset::SamplerConfig sampler;
    sampler.elementwiseSamples = 200;
    const auto corpus = dataset::generateOperatorData(
        {gpusim::findGpu("V100")}, sampler);
    pred.train(corpus.at(OpType::Elementwise));
    EXPECT_GT(pred.utilizationFloor(), kMinUtil);
    EXPECT_LT(pred.utilizationFloor(), 1.0);
}

TEST_F(TrainedNeuSight, FloorBoundsFarOutOfDistributionShapes)
{
    // A 2-row layer norm is ~2000x below the family's training range;
    // the predicted utilization must not collapse to the hard minimum
    // (which would inflate latency by orders of magnitude).
    const gpusim::GpuSpec &gpu = gpusim::findGpu("H100");
    const auto detail = framework->predictKernelDetail(
        gpusim::makeLayerNorm(2, 512), gpu);
    EXPECT_GT(detail.utilization, 10.0 * kMinUtil);
    // And the resulting latency stays microseconds-scale, like the
    // measurement substrate says it should.
    const double measured = gpusim::Device(gpu).measureKernelMs(
        gpusim::makeLayerNorm(2, 512));
    EXPECT_LT(framework->predictKernelMs(gpusim::makeLayerNorm(2, 512),
                                         gpu),
              50.0 * measured);
}

TEST_F(TrainedNeuSight, PredictionsAreFiniteAndPositive)
{
    for (const char *gpu_name : {"V100", "H100", "L4"}) {
        const gpusim::GpuSpec &gpu = gpusim::findGpu(gpu_name);
        for (const auto &desc :
             {gpusim::makeBmm(8, 1024, 1024, 512),
              gpusim::makeLinear(2048, 1024, 4096),
              gpusim::makeElementwise("gelu", 1 << 20, 1, 8.0),
              gpusim::makeSoftmax(8192, 1024),
              gpusim::makeLayerNorm(8192, 1024)}) {
            const double ms = framework->predictKernelMs(desc, gpu);
            EXPECT_TRUE(std::isfinite(ms)) << desc.summary();
            EXPECT_GT(ms, 0.0) << desc.summary();
        }
    }
}

TEST_F(TrainedNeuSight, DetailObeysPerformanceLaws)
{
    const gpusim::GpuSpec &gpu = gpusim::findGpu("H100");
    const auto desc = gpusim::makeBmm(16, 2048, 2048, 1024);
    const PredictionDetail d = framework->predictKernelDetail(desc, gpu);
    EXPECT_GT(d.utilization, 0.0);
    EXPECT_LE(d.utilization, 1.0);
    EXPECT_GT(d.alpha, 0.0);
    EXPECT_LT(d.alpha, 1.0); // Sigmoid-bounded (Eq. 8).
    EXPECT_GT(d.beta, 0.0);
    EXPECT_LT(d.beta, 1.0);
    EXPECT_GE(d.numWaves, 1u);
    // Latency can never beat the roofline (utilization <= 1).
    const gpusim::TileInfo tile =
        gpusim::TilePolicy::tileCosts(desc, d.tileDims);
    const double roofline_ms =
        tile.flopsPerTile / d.rooflinePerSm *
        static_cast<double>(d.numWaves) * 1e3;
    EXPECT_GE(d.latencyMs, roofline_ms * 0.999);
}

TEST_F(TrainedNeuSight, TrainingGpuKernelErrorIsSmall)
{
    // In-distribution shapes on a training GPU: error well under 30%.
    const gpusim::GpuSpec &gpu = gpusim::findGpu("A100-40GB");
    const gpusim::Device dev(gpu);
    const auto desc = gpusim::makeBmm(16, 512, 512, 512);
    const double measured = dev.measureKernelMs(desc);
    const double predicted = framework->predictKernelMs(desc, gpu);
    EXPECT_LT(std::abs(predicted - measured) / measured, 0.30);
}

TEST_F(TrainedNeuSight, MemoryFallbackForUnknownOps)
{
    const gpusim::GpuSpec &gpu = gpusim::findGpu("H100");
    const auto desc = gpusim::makeMemoryOp("embedding", 1e8);
    const PredictionDetail d = framework->predictKernelDetail(desc, gpu);
    EXPECT_TRUE(d.memoryFallback);
    EXPECT_NEAR(d.latencyMs, 1e8 / gpu.memBwBytes() * 1e3, 1e-9);
}

TEST_F(TrainedNeuSight, FusedKernelsUseFirstOpPredictor)
{
    const gpusim::GpuSpec &gpu = gpusim::findGpu("A100-80GB");
    auto fused = gpusim::makeElementwise("add", 4096 * 1024, 2, 1.0);
    fused.opName = "add+layernorm";
    fused.flops *= 2.0;
    const PredictionDetail d = framework->predictKernelDetail(fused, gpu);
    EXPECT_FALSE(d.memoryFallback);
    EXPECT_GT(d.latencyMs, 0.0);
}

TEST_F(TrainedNeuSight, GraphPredictionSumsKernels)
{
    const gpusim::GpuSpec &gpu = gpusim::findGpu("V100");
    graph::KernelGraph g;
    g.add(gpusim::makeBmm(4, 512, 512, 512), "a");
    g.add(gpusim::makeSoftmax(4096, 512), "b");
    const double total = framework->predictGraphMs(g, gpu);
    const double parts =
        framework->predictKernelMs(g.nodes[0].kernel, gpu) +
        framework->predictKernelMs(g.nodes[1].kernel, gpu);
    EXPECT_NEAR(total, parts, parts * 1e-12);
}

TEST_F(TrainedNeuSight, SaveLoadPreservesPredictions)
{
    const std::string path = "/tmp/neusight_model_test.bin";
    framework->save(path);
    PredictorConfig cfg;
    cfg.hiddenDim = 32;
    cfg.hiddenLayers = 4;
    NeuSight restored(cfg);
    restored.load(path);
    const gpusim::GpuSpec &gpu = gpusim::findGpu("H100");
    for (const auto &desc : {gpusim::makeBmm(8, 2048, 2048, 512),
                             gpusim::makeSoftmax(16384, 2048)}) {
        EXPECT_DOUBLE_EQ(restored.predictKernelMs(desc, gpu),
                         framework->predictKernelMs(desc, gpu));
    }
    std::filesystem::remove(path);
}

TEST_F(TrainedNeuSight, LoadRejectsWrongArchitecture)
{
    const std::string path = "/tmp/neusight_model_arch.bin";
    framework->save(path);
    PredictorConfig wrong;
    wrong.hiddenDim = 16;
    wrong.hiddenLayers = 2;
    NeuSight other(wrong);
    EXPECT_THROW(other.load(path), std::runtime_error);
    std::filesystem::remove(path);
}

TEST(Predictor, UntrainedPredictDies)
{
    PredictorConfig cfg;
    cfg.hiddenDim = 8;
    cfg.hiddenLayers = 1;
    KernelPredictor pred(OpType::BatchedMatmul, cfg);
    EXPECT_DEATH(pred.predict(gpusim::makeBmm(1, 64, 64, 64),
                              gpusim::findGpu("V100"), {1, 32, 32}),
                 "before train");
}

} // namespace
} // namespace neusight::core
