/**
 * @file
 * Tests for the GPU simulator substrate: the Table-4 device database,
 * kernel cost accounting, tile policy (Eq. 2-3) and the execution model's
 * physical invariants (roofline bound, wave quantization, occupancy ramp,
 * determinism, bounded noise).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "gpusim/device.hpp"
#include "gpusim/gpu_spec.hpp"
#include "gpusim/kernel_desc.hpp"
#include "gpusim/tile_policy.hpp"

namespace neusight::gpusim {
namespace {

TEST(GpuSpec, DatabaseHasAllTable4Gpus)
{
    const auto &db = deviceDatabase();
    EXPECT_EQ(db.size(), 11u);
    for (const char *name :
         {"P4", "P100", "V100", "T4", "A100-40GB", "A100-80GB", "L4",
          "H100", "MI100", "MI210", "MI250"})
        EXPECT_NO_THROW(findGpu(name)) << name;
    EXPECT_THROW(findGpu("B200"), std::runtime_error);
}

TEST(GpuSpec, Table4ValuesReproduced)
{
    const GpuSpec &h100 = findGpu("H100");
    EXPECT_DOUBLE_EQ(h100.peakFp32Tflops, 66.9);
    EXPECT_DOUBLE_EQ(h100.memorySizeGB, 80.0);
    EXPECT_DOUBLE_EQ(h100.memoryBwGBps, 3430.0);
    EXPECT_EQ(h100.numSms, 132);
    EXPECT_DOUBLE_EQ(h100.l2CacheMB, 50.0);
    EXPECT_FALSE(h100.inTrainingSet);

    const GpuSpec &v100 = findGpu("V100");
    EXPECT_DOUBLE_EQ(v100.peakFp32Tflops, 8.1);
    EXPECT_EQ(v100.numSms, 80);
    EXPECT_TRUE(v100.inTrainingSet);

    const GpuSpec &mi100 = findGpu("MI100");
    EXPECT_EQ(mi100.vendor, Vendor::Amd);
    EXPECT_DOUBLE_EQ(mi100.matrixFp32Tflops, 46.1);
}

TEST(GpuSpec, TrainingSetsMatchPaperSplit)
{
    const auto nvidia = nvidiaTrainingSet();
    EXPECT_EQ(nvidia.size(), 5u);
    for (const auto &g : nvidia) {
        EXPECT_TRUE(g.inTrainingSet);
        EXPECT_EQ(g.vendor, Vendor::Nvidia);
    }
    const auto amd = amdTrainingSet();
    EXPECT_EQ(amd.size(), 2u);
}

TEST(GpuSpec, DerivedQuantities)
{
    const GpuSpec &a100 = findGpu("A100-40GB");
    EXPECT_DOUBLE_EQ(a100.peakFlops(), 19.5e12);
    EXPECT_DOUBLE_EQ(a100.memBwBytes(), 1555e9);
    EXPECT_DOUBLE_EQ(a100.peakFlopsPerSm(), 19.5e12 / 108);
    EXPECT_DOUBLE_EQ(a100.l2BytesPerSm(), 40e6 / 108);
}

TEST(KernelDesc, DtypeBytes)
{
    EXPECT_EQ(dtypeBytes(DataType::Fp32), 4u);
    EXPECT_EQ(dtypeBytes(DataType::Fp16), 2u);
}

TEST(KernelDesc, BmmAccounting)
{
    const KernelDesc d = makeBmm(4, 128, 256, 64);
    EXPECT_EQ(d.type, OpType::BatchedMatmul);
    EXPECT_EQ(d.outDims, (std::vector<uint64_t>{4, 128, 256}));
    EXPECT_EQ(d.reduceDim, 64u);
    EXPECT_DOUBLE_EQ(d.flops, 2.0 * 4 * 128 * 256 * 64);
    EXPECT_DOUBLE_EQ(d.memBytes,
                     4.0 * (128 * 64 + 64 * 256 + 128 * 256) * 4);
    EXPECT_EQ(d.numOutputElements(), 4u * 128 * 256);
}

TEST(KernelDesc, LinearAccounting)
{
    const KernelDesc d = makeLinear(32, 1024, 4096);
    EXPECT_EQ(d.type, OpType::FullyConnected);
    EXPECT_DOUBLE_EQ(d.flops, 2.0 * 32 * 1024 * 4096 + 32.0 * 4096);
    EXPECT_DOUBLE_EQ(
        d.memBytes, (32.0 * 1024 + 1024.0 * 4096 + 32.0 * 4096) * 4);
}

TEST(KernelDesc, Fp16HalvesTraffic)
{
    const KernelDesc fp32 = makeBmm(1, 256, 256, 256);
    const KernelDesc fp16 = makeBmm(1, 256, 256, 256, DataType::Fp16);
    EXPECT_DOUBLE_EQ(fp16.memBytes, fp32.memBytes / 2.0);
    EXPECT_DOUBLE_EQ(fp16.flops, fp32.flops);
}

TEST(KernelDesc, ElementwiseAccounting)
{
    const KernelDesc d = makeElementwise("add", 1000, 2, 1.0);
    EXPECT_DOUBLE_EQ(d.flops, 1000.0);
    EXPECT_DOUBLE_EQ(d.memBytes, 1000.0 * 3 * 4); // 2 in + 1 out.
    const KernelDesc g = makeElementwise("gelu", 1000, 1, 8.0);
    EXPECT_DOUBLE_EQ(g.memBytes, 1000.0 * 2 * 4); // 1 in + 1 out.
}

TEST(KernelDesc, IntensityIsFlopsOverBytes)
{
    const KernelDesc d = makeBmm(1, 512, 512, 512);
    EXPECT_NEAR(d.intensity(), d.flops / d.memBytes, 1e-15);
}

TEST(TilePolicy, NumTilesIsCeilDivProduct)
{
    const KernelDesc d = makeBmm(3, 100, 100, 64);
    EXPECT_EQ(TilePolicy::numTiles(d, {1, 64, 64}), 3u * 2 * 2);
    EXPECT_EQ(TilePolicy::numTiles(d, {1, 128, 128}), 3u * 1 * 1);
    EXPECT_EQ(TilePolicy::numTiles(d, {3, 100, 100}), 1u);
}

TEST(TilePolicy, NumWavesIsCeilDiv)
{
    EXPECT_EQ(TilePolicy::numWaves(1, 80), 1u);
    EXPECT_EQ(TilePolicy::numWaves(80, 80), 1u);
    EXPECT_EQ(TilePolicy::numWaves(81, 80), 2u);
    EXPECT_EQ(TilePolicy::numWaves(800, 80), 10u);
}

TEST(TilePolicy, GemmTileCostsAccountForReuse)
{
    const KernelDesc d = makeBmm(1, 512, 512, 256);
    const TileInfo t = TilePolicy::tileCosts(d, {1, 128, 64});
    EXPECT_DOUBLE_EQ(t.flopsPerTile, 2.0 * 128 * 64 * 256);
    EXPECT_DOUBLE_EQ(t.memBytesPerTile,
                     (128.0 * 256 + 256.0 * 64 + 128.0 * 64) * 4);
}

TEST(TilePolicy, PointwiseTileCostsScaleByCoverage)
{
    const KernelDesc d = makeElementwise("add", 10000, 2, 1.0);
    const TileInfo t = TilePolicy::tileCosts(d, {1000});
    EXPECT_NEAR(t.flopsPerTile, d.flops / 10.0, 1e-9);
    EXPECT_NEAR(t.memBytesPerTile, d.memBytes / 10.0, 1e-9);
}

TEST(TilePolicy, SelectsLargerTilesForLargerGemms)
{
    const GpuSpec &v100 = findGpu("V100");
    const TileInfo small =
        TilePolicy::select(makeBmm(1, 64, 64, 64), v100);
    const TileInfo large =
        TilePolicy::select(makeBmm(64, 4096, 4096, 1024), v100);
    const uint64_t small_area = small.dims[1] * small.dims[2];
    const uint64_t large_area = large.dims[1] * large.dims[2];
    EXPECT_GE(large_area, small_area);
    EXPECT_GE(large_area, 128u * 64); // Fat tiles on a saturated GEMM.
}

TEST(TilePolicy, PaletteIsGpuDependent)
{
    // Large-L2 parts expose fatter tile variants.
    const auto p4 = TilePolicy::gemmPalette(findGpu("P4"));
    const auto h100 = TilePolicy::gemmPalette(findGpu("H100"));
    EXPECT_GT(h100.size(), p4.size());
    uint64_t max_p4 = 0;
    uint64_t max_h100 = 0;
    for (const auto &[tm, tn] : p4)
        max_p4 = std::max(max_p4, tm * tn);
    for (const auto &[tm, tn] : h100)
        max_h100 = std::max(max_h100, tm * tn);
    EXPECT_GT(max_h100, max_p4);
}

TEST(TilePolicy, TileNeverHasZeroDim)
{
    const GpuSpec &t4 = findGpu("T4");
    for (const auto &desc :
         {makeBmm(1, 1, 1, 1), makeElementwise("add", 1, 2, 1.0),
          makeSoftmax(1, 1), makeLayerNorm(7, 3)}) {
        const TileInfo t = TilePolicy::select(desc, t4);
        for (uint64_t d : t.dims)
            EXPECT_GE(d, 1u) << desc.summary();
    }
}

TEST(Device, EffectivePeakFollowsDatapath)
{
    const GpuSpec &mi100 = findGpu("MI100");
    EXPECT_DOUBLE_EQ(effectivePeakFlops(makeBmm(1, 64, 64, 64), mi100),
                     46.1e12); // AMD matrix engine for GEMM.
    EXPECT_DOUBLE_EQ(
        effectivePeakFlops(makeElementwise("add", 100, 2, 1.0), mi100),
        23.1e12); // Vector datapath otherwise.
    const GpuSpec &h100 = findGpu("H100");
    EXPECT_DOUBLE_EQ(
        effectivePeakFlops(
            makeBmm(1, 64, 64, 64, DataType::Fp16, true), h100),
        989.4e12); // Tensor core.
}

TEST(Device, MeasurementIsDeterministic)
{
    const Device dev(findGpu("A100-40GB"));
    const KernelDesc d = makeBmm(8, 512, 512, 512);
    EXPECT_DOUBLE_EQ(dev.measureKernelMs(d), dev.measureKernelMs(d));
}

TEST(Device, LatencyRespectsComputeLowerBound)
{
    // No kernel can beat peak FLOPS: latency >= flops / peak.
    for (const char *name : {"P4", "V100", "A100-40GB", "H100", "MI250"}) {
        const Device dev(findGpu(name));
        for (const auto &desc :
             {makeBmm(16, 1024, 1024, 1024), makeLinear(4096, 4096, 4096),
              makeSoftmax(8192, 2048)}) {
            const double bound_ms =
                desc.flops / effectivePeakFlops(desc, dev.spec()) * 1e3;
            EXPECT_GE(dev.measureKernelMs(desc), bound_ms * 0.999)
                << name << " " << desc.summary();
        }
    }
}

TEST(Device, UtilizationIsAFraction)
{
    const Device dev(findGpu("H100"));
    for (uint64_t dim : {16u, 64u, 256u, 1024u, 4096u}) {
        const KernelLaunch launch =
            dev.profileKernel(makeBmm(4, dim, dim, dim));
        EXPECT_GT(launch.utilization, 0.0);
        EXPECT_LT(launch.utilization, 1.0);
    }
}

TEST(Device, UtilizationRampsWithWaves)
{
    // Paper Figure 5 / Table 2: utilization grows with the wave count.
    const Device dev(findGpu("V100"));
    double prev_util = 0.0;
    for (uint64_t batch : {1u, 4u, 16u, 64u, 256u}) {
        const KernelLaunch launch =
            dev.profileKernel(makeBmm(batch, 256, 256, 256));
        EXPECT_GE(launch.utilization, prev_util * 0.999)
            << "batch " << batch;
        prev_util = launch.utilization;
    }
}

TEST(Device, LatencyMonotonicInProblemSize)
{
    const Device dev(findGpu("A100-80GB"));
    double prev = 0.0;
    for (uint64_t m : {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
        const double ms = dev.measureKernelMs(makeBmm(4, m, 1024, 1024));
        EXPECT_GT(ms, prev) << m;
        prev = ms;
    }
}

TEST(Device, WaveQuantizationStep)
{
    // Crossing an SM-count boundary in tiles raises latency noticeably —
    // whenever the library keeps the same tile. (The policy may instead
    // switch to a smaller tile to smooth the cliff, which is also
    // realistic; we require the cliff to be visible at least once in a
    // batch sweep with a stable tile.)
    const GpuSpec &gpu = findGpu("V100"); // 80 SMs.
    const Device dev(gpu);
    bool saw_step = false;
    KernelLaunch prev = dev.profileKernel(makeBmm(1, 128, 128, 512));
    double prev_ms = prev.latencyMs;
    for (uint64_t b = 2; b <= 4 * static_cast<uint64_t>(gpu.numSms); ++b) {
        const KernelLaunch cur =
            dev.profileKernel(makeBmm(b, 128, 128, 512));
        // The relative step shrinks as 1/waves; assert it where it is
        // large (the first few wave boundaries).
        if (cur.tile.dims == prev.tile.dims &&
            cur.numWaves == prev.numWaves + 1 && prev.numWaves <= 2) {
            EXPECT_GT(cur.latencyMs, prev_ms * 1.15) << "batch " << b;
            saw_step = true;
        }
        prev = cur;
        prev_ms = cur.latencyMs;
    }
    EXPECT_TRUE(saw_step);
}

TEST(Device, NoiseIsBounded)
{
    // Latency with noise stays within ~2.5% of the re-derivable mean:
    // measure two nearby kernels and confirm no wild outliers.
    const Device dev(findGpu("T4"));
    for (uint64_t k = 512; k <= 560; k += 8) {
        const double a = dev.measureKernelMs(makeBmm(8, 512, 512, k));
        const double b = dev.measureKernelMs(makeBmm(8, 512, 512, k + 4));
        EXPECT_NEAR(a, b, a * 0.10) << k;
    }
}

TEST(Device, LaunchOverheadDominatesTinyKernels)
{
    const Device dev(findGpu("H100"));
    const KernelLaunch launch =
        dev.profileKernel(makeElementwise("add", 64, 2, 1.0));
    EXPECT_GT(launch.overheadMs / launch.latencyMs, 0.5);
}

TEST(Device, Fp16TensorCoreBeatsFp32)
{
    const Device dev(findGpu("H100"));
    const double fp32 =
        dev.measureKernelMs(makeBmm(16, 2048, 2048, 2048));
    const double fp16 = dev.measureKernelMs(
        makeBmm(16, 2048, 2048, 2048, DataType::Fp16, true));
    EXPECT_LT(fp16, fp32 / 2.0);
}

TEST(Device, NewerGpuIsFasterOnBigGemm)
{
    const KernelDesc d = makeBmm(16, 2048, 2048, 2048);
    const double p100 = Device(findGpu("P100")).measureKernelMs(d);
    const double a100 = Device(findGpu("A100-40GB")).measureKernelMs(d);
    const double h100 = Device(findGpu("H100")).measureKernelMs(d);
    EXPECT_LT(a100, p100);
    EXPECT_LT(h100, a100);
}

TEST(Device, MemoryBoundOpsScaleWithBandwidth)
{
    const KernelDesc d = makeElementwise("add", 1 << 24, 2, 1.0);
    const double t4 = Device(findGpu("T4")).measureKernelMs(d); // 320 GB/s
    const double h100 =
        Device(findGpu("H100")).measureKernelMs(d); // 3430 GB/s
    const double ratio = t4 / h100;
    EXPECT_GT(ratio, 4.0);
    EXPECT_LT(ratio, 16.0);
}

TEST(Device, FitsMemoryChecksCapacity)
{
    const Device dev(findGpu("P4")); // 8 GB.
    EXPECT_TRUE(dev.fitsMemory(4e9));
    EXPECT_FALSE(dev.fitsMemory(16e9));
}

TEST(Device, ProfileMatchesMeasure)
{
    const Device dev(findGpu("L4"));
    const KernelDesc d = makeSoftmax(4096, 1024);
    EXPECT_DOUBLE_EQ(dev.profileKernel(d).latencyMs,
                     dev.measureKernelMs(d));
}

TEST(Device, RejectsIncompleteSpec)
{
    GpuSpec bogus;
    bogus.name = "incomplete";
    EXPECT_DEATH(Device dev(bogus), "incomplete");
}

} // namespace
} // namespace neusight::gpusim
