/**
 * @file
 * Tests for the NN substrate: module construction, MLP/transformer
 * convergence on synthetic regression tasks, AdamW behaviour, trainer
 * bookkeeping, feature scaling, and serialization round-trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "nn/module.hpp"
#include "nn/optimizer.hpp"
#include "nn/scaler.hpp"
#include "nn/trainer.hpp"

namespace neusight::nn {
namespace {

/** Synthetic dataset y = f(x) with x ~ N(0,1). */
void
makeDataset(size_t n, size_t dim, uint64_t seed,
            const std::function<double(const std::vector<double> &)> &fn,
            Matrix &x, std::vector<double> &y)
{
    Rng rng(seed);
    x = Matrix(n, dim);
    y.resize(n);
    std::vector<double> row(dim);
    for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < dim; ++c) {
            row[c] = rng.normal();
            x.at(i, c) = row[c];
        }
        y[i] = fn(row);
    }
}

TEST(Mlp, ParameterCountMatchesArchitecture)
{
    MlpConfig cfg;
    cfg.inputDim = 5;
    cfg.hiddenDim = 16;
    cfg.hiddenLayers = 3;
    cfg.outputDim = 2;
    Mlp mlp(cfg);
    // 5*16+16 + 2*(16*16+16) + 16*2+2.
    EXPECT_EQ(mlp.parameterCount(),
              5u * 16 + 16 + 2 * (16 * 16 + 16) + 16 * 2 + 2);
    EXPECT_EQ(mlp.inputDim(), 5u);
}

TEST(Mlp, ForwardShape)
{
    Mlp mlp({.inputDim = 4, .hiddenDim = 8, .hiddenLayers = 2,
             .outputDim = 3, .seed = 1});
    Var out = mlp.forward(constant(Matrix(7, 4, 0.5)));
    EXPECT_EQ(out.value().rows(), 7u);
    EXPECT_EQ(out.value().cols(), 3u);
}

TEST(Mlp, ZeroGradClearsAccumulation)
{
    Mlp mlp({.inputDim = 2, .hiddenDim = 4, .hiddenLayers = 1,
             .outputDim = 1, .seed = 2});
    Var out = meanAllAv(mlp.forward(constant(Matrix(3, 2, 1.0))));
    backward(out);
    double total = 0.0;
    for (const auto &p : mlp.parameters())
        total += std::abs(p.grad().sum());
    EXPECT_GT(total, 0.0);
    mlp.zeroGrad();
    for (const auto &p : mlp.parameters())
        EXPECT_DOUBLE_EQ(p.grad().sum(), 0.0);
}

TEST(Trainer, MlpLearnsLinearFunction)
{
    Matrix x;
    std::vector<double> y;
    makeDataset(512, 3, 42,
                [](const std::vector<double> &v) {
                    return 2.0 * v[0] - v[1] + 0.5 * v[2] + 3.0;
                },
                x, y);
    Mlp mlp({.inputDim = 3, .hiddenDim = 16, .hiddenLayers = 2,
             .outputDim = 1, .seed = 3});
    TrainConfig cfg;
    cfg.epochs = 60;
    cfg.batchSize = 32;
    cfg.lr = 3e-3;
    cfg.loss = LossKind::Mse;
    cfg.weightDecay = 0.0;
    ForwardFn fwd = [&mlp](const Batch &b) {
        return mlp.forward(constant(b.x));
    };
    const TrainHistory h = fit(mlp, x, y, fwd, cfg);
    EXPECT_LT(h.finalTrainLoss(), 0.05);
    EXPECT_LT(h.finalValLoss(), 0.1);
    EXPECT_LT(h.finalTrainLoss(), h.trainLoss.front());
}

TEST(Trainer, MlpLearnsNonlinearFunction)
{
    Matrix x;
    std::vector<double> y;
    makeDataset(800, 2, 43,
                [](const std::vector<double> &v) {
                    return std::abs(v[0]) + v[1] * v[1];
                },
                x, y);
    Mlp mlp({.inputDim = 2, .hiddenDim = 32, .hiddenLayers = 3,
             .outputDim = 1, .seed = 4});
    TrainConfig cfg;
    cfg.epochs = 80;
    cfg.batchSize = 64;
    cfg.lr = 3e-3;
    cfg.loss = LossKind::Mse;
    cfg.weightDecay = 0.0;
    ForwardFn fwd = [&mlp](const Batch &b) {
        return mlp.forward(constant(b.x));
    };
    const TrainHistory h = fit(mlp, x, y, fwd, cfg);
    EXPECT_LT(h.finalTrainLoss(), 0.1);
}

TEST(Trainer, HistoryHasOneEntryPerEpoch)
{
    Matrix x;
    std::vector<double> y;
    makeDataset(64, 2, 44,
                [](const std::vector<double> &v) { return v[0]; }, x, y);
    Mlp mlp({.inputDim = 2, .hiddenDim = 4, .hiddenLayers = 1,
             .outputDim = 1, .seed = 5});
    TrainConfig cfg;
    cfg.epochs = 7;
    cfg.batchSize = 16;
    ForwardFn fwd = [&mlp](const Batch &b) {
        return mlp.forward(constant(b.x));
    };
    const TrainHistory h = fit(mlp, x, y, fwd, cfg);
    EXPECT_EQ(h.trainLoss.size(), 7u);
    EXPECT_EQ(h.valLoss.size(), 7u);
}

TEST(Trainer, GatherRowsPicksCorrectRows)
{
    const Matrix x = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    const Matrix g = gatherRows(x, {2, 0});
    EXPECT_TRUE(g.allClose(Matrix::fromRows({{5, 6}, {1, 2}})));
}

TEST(AdamW, SingleStepReducesLoss)
{
    Mlp mlp({.inputDim = 2, .hiddenDim = 8, .hiddenLayers = 1,
             .outputDim = 1, .seed = 6});
    const Matrix x(16, 2, 0.7);
    const std::vector<double> y(16, 5.0);
    auto loss_value = [&] {
        Var pred = mlp.forward(constant(x));
        return lossAv(pred, y, LossKind::Mse).value().at(0, 0);
    };
    const double before = loss_value();
    AdamW opt(mlp, {.lr = 1e-2, .weightDecay = 0.0});
    for (int i = 0; i < 20; ++i) {
        mlp.zeroGrad();
        Var loss = lossAv(mlp.forward(constant(x)), y, LossKind::Mse);
        backward(loss);
        opt.step();
    }
    EXPECT_LT(loss_value(), before);
}

TEST(AdamW, WeightDecayShrinksWeightsWithZeroGradient)
{
    Mlp mlp({.inputDim = 2, .hiddenDim = 4, .hiddenLayers = 1,
             .outputDim = 1, .seed = 7});
    AdamW opt(mlp, {.lr = 1e-2, .weightDecay = 0.5});
    double norm_before = 0.0;
    for (const auto &p : mlp.parameters())
        for (size_t i = 0; i < p.value().size(); ++i)
            norm_before += p.value().raw()[i] * p.value().raw()[i];
    mlp.zeroGrad(); // All gradients zero: only decay acts.
    opt.step();
    double norm_after = 0.0;
    for (const auto &p : mlp.parameters())
        for (size_t i = 0; i < p.value().size(); ++i)
            norm_after += p.value().raw()[i] * p.value().raw()[i];
    EXPECT_LT(norm_after, norm_before);
}

TEST(Scaler, StandardizesColumns)
{
    FeatureScaler scaler(false);
    const Matrix x = Matrix::fromRows({{1, 100}, {3, 300}, {5, 500}});
    const Matrix t = scaler.fitTransform(x);
    for (size_t c = 0; c < 2; ++c) {
        double mu = 0.0;
        double ss = 0.0;
        for (size_t r = 0; r < 3; ++r)
            mu += t.at(r, c);
        mu /= 3.0;
        for (size_t r = 0; r < 3; ++r)
            ss += (t.at(r, c) - mu) * (t.at(r, c) - mu);
        EXPECT_NEAR(mu, 0.0, 1e-12);
        EXPECT_NEAR(std::sqrt(ss / 3.0), 1.0, 1e-12);
    }
}

TEST(Scaler, ConstantColumnsPassThrough)
{
    FeatureScaler scaler(false);
    const Matrix x = Matrix::fromRows({{7, 1}, {7, 2}});
    const Matrix t = scaler.fitTransform(x);
    EXPECT_DOUBLE_EQ(t.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(t.at(1, 0), 0.0);
}

TEST(Scaler, LogCompressionTamesMagnitudes)
{
    FeatureScaler scaler(true);
    const Matrix x = Matrix::fromRows({{1.0}, {1e6}, {1e12}});
    const Matrix t = scaler.fitTransform(x);
    EXPECT_LT(std::abs(t.at(2, 0)), 3.0);
}

TEST(Scaler, ClampToFitRangeBoundsExtrapolation)
{
    FeatureScaler scaler(false);
    scaler.setClampToFitRange(true);
    scaler.fit(Matrix::fromRows({{0.0}, {10.0}, {20.0}}));
    // A value far beyond the fit range saturates at the range edge.
    const Matrix wild = scaler.transform(Matrix::fromRows({{1000.0}}));
    const Matrix edge = scaler.transform(Matrix::fromRows({{20.0}}));
    EXPECT_DOUBLE_EQ(wild.at(0, 0), edge.at(0, 0));
    // Values inside the range are unaffected.
    FeatureScaler unclamped(false);
    unclamped.fit(Matrix::fromRows({{0.0}, {10.0}, {20.0}}));
    EXPECT_DOUBLE_EQ(
        scaler.transform(Matrix::fromRows({{5.0}})).at(0, 0),
        unclamped.transform(Matrix::fromRows({{5.0}})).at(0, 0));
}

TEST(Scaler, ClampFlagSurvivesSerialization)
{
    FeatureScaler scaler(false);
    scaler.setClampToFitRange(true);
    scaler.fit(Matrix::fromRows({{1.0}, {3.0}}));
    std::stringstream buf;
    scaler.save(buf);
    FeatureScaler restored(true);
    restored.load(buf);
    const Matrix wild = Matrix::fromRows({{100.0}});
    EXPECT_TRUE(
        restored.transform(wild).allClose(scaler.transform(wild), 1e-12));
}

TEST(Scaler, SaveLoadRoundTrip)
{
    FeatureScaler scaler(true);
    const Matrix x = Matrix::fromRows({{1, 10}, {100, 1000}, {5, 50}});
    scaler.fit(x);
    std::stringstream buf;
    scaler.save(buf);
    FeatureScaler restored(false);
    restored.load(buf);
    EXPECT_TRUE(restored.transform(x).allClose(scaler.transform(x), 1e-12));
}

TEST(Module, SaveLoadRoundTripPreservesPredictions)
{
    Mlp a({.inputDim = 3, .hiddenDim = 8, .hiddenLayers = 2,
           .outputDim = 2, .seed = 8});
    Mlp b({.inputDim = 3, .hiddenDim = 8, .hiddenLayers = 2,
           .outputDim = 2, .seed = 999}); // Different init.
    std::stringstream buf;
    a.saveParameters(buf);
    b.loadParameters(buf);
    const Matrix x(5, 3, 0.3);
    EXPECT_TRUE(b.forward(constant(x)).value().allClose(
        a.forward(constant(x)).value(), 1e-12));
}

TEST(Module, LoadRejectsWrongArchitecture)
{
    Mlp a({.inputDim = 3, .hiddenDim = 8, .hiddenLayers = 2,
           .outputDim = 1, .seed = 9});
    Mlp wrong({.inputDim = 3, .hiddenDim = 4, .hiddenLayers = 2,
               .outputDim = 1, .seed = 9});
    std::stringstream buf;
    a.saveParameters(buf);
    EXPECT_THROW(wrong.loadParameters(buf), std::runtime_error);
}

TEST(Transformer, ForwardShapeAndDeterminism)
{
    TransformerConfig cfg;
    cfg.numFeatures = 6;
    cfg.dModel = 16;
    cfg.numLayers = 2;
    cfg.numHeads = 4;
    cfg.ffDim = 32;
    cfg.seed = 10;
    TransformerRegressor model(cfg);
    const Matrix x(9, 6, 0.25);
    const Matrix out1 = model.forward(constant(x)).value();
    const Matrix out2 = model.forward(constant(x)).value();
    EXPECT_EQ(out1.rows(), 9u);
    EXPECT_EQ(out1.cols(), 1u);
    EXPECT_TRUE(out1.allClose(out2, 1e-15));
}

TEST(Transformer, LearnsSimpleRegression)
{
    Matrix x;
    std::vector<double> y;
    makeDataset(256, 4, 45,
                [](const std::vector<double> &v) {
                    return v[0] + 2.0 * v[2];
                },
                x, y);
    TransformerConfig cfg;
    cfg.numFeatures = 4;
    cfg.dModel = 16;
    cfg.numLayers = 1;
    cfg.numHeads = 2;
    cfg.ffDim = 32;
    cfg.seed = 11;
    TransformerRegressor model(cfg);
    TrainConfig tc;
    tc.epochs = 60;
    tc.batchSize = 32;
    tc.lr = 3e-3;
    tc.loss = LossKind::Mse;
    tc.weightDecay = 0.0;
    ForwardFn fwd = [&model](const Batch &b) {
        return model.forward(constant(b.x));
    };
    const TrainHistory h = fit(model, x, y, fwd, tc);
    EXPECT_LT(h.finalTrainLoss(), 0.5);
    EXPECT_LT(h.finalTrainLoss(), h.trainLoss.front() * 0.25);
}

TEST(Transformer, SerializationRoundTrip)
{
    TransformerConfig cfg;
    cfg.numFeatures = 3;
    cfg.dModel = 8;
    cfg.numLayers = 1;
    cfg.numHeads = 2;
    cfg.ffDim = 16;
    cfg.seed = 12;
    TransformerRegressor a(cfg);
    cfg.seed = 13;
    TransformerRegressor b(cfg);
    std::stringstream buf;
    a.saveParameters(buf);
    b.loadParameters(buf);
    const Matrix x(4, 3, 0.4);
    EXPECT_TRUE(b.forward(constant(x)).value().allClose(
        a.forward(constant(x)).value(), 1e-12));
}

} // namespace
} // namespace neusight::nn
