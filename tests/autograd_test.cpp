/**
 * @file
 * Finite-difference gradient checks for every autograd op, plus
 * structural tests of the tape (diamond reuse, accumulation, constants).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"
#include "nn/autograd.hpp"
#include "nn/loss.hpp"

namespace neusight::nn {
namespace {

Matrix
randomMatrix(size_t rows, size_t cols, uint64_t seed, double scale = 1.0,
             double shift = 0.0)
{
    Rng rng(seed);
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i)
        m.raw()[i] = rng.normal() * scale + shift;
    return m;
}

/** Rebuilds the scalar objective from the current parameter values. */
using BuildFn = std::function<Var()>;

/** Central-difference check of d(objective)/d(param) for all params. */
void
expectGradientsMatch(const std::vector<Var> &params, const BuildFn &build,
                     double eps = 1e-5, double tol = 2e-5)
{
    for (const auto &p : params)
        p.node()->ensureGrad().setZero();
    Var out = build();
    backward(out);

    for (const auto &p : params) {
        Matrix &value = p.node()->value;
        const Matrix &analytic = p.node()->ensureGrad();
        for (size_t i = 0; i < value.size(); ++i) {
            const double orig = value.raw()[i];
            value.raw()[i] = orig + eps;
            const double plus = build().value().at(0, 0);
            value.raw()[i] = orig - eps;
            const double minus = build().value().at(0, 0);
            value.raw()[i] = orig;
            const double numeric = (plus - minus) / (2.0 * eps);
            EXPECT_NEAR(analytic.raw()[i], numeric,
                        tol * std::max(1.0, std::abs(numeric)))
                << "param '" << p.node()->name << "' element " << i;
        }
    }
}

TEST(Autograd, MatmulGradients)
{
    Var a = parameter(randomMatrix(3, 4, 1), "a");
    Var b = parameter(randomMatrix(4, 2, 2), "b");
    expectGradientsMatch({a, b},
                         [&] { return meanAllAv(matmulAv(a, b)); });
}

TEST(Autograd, AddSubMulGradients)
{
    Var a = parameter(randomMatrix(2, 3, 3), "a");
    Var b = parameter(randomMatrix(2, 3, 4), "b");
    expectGradientsMatch({a, b}, [&] {
        return meanAllAv(mulAv(addAv(a, b), subAv(a, b)));
    });
}

TEST(Autograd, ScaleGradients)
{
    Var a = parameter(randomMatrix(2, 2, 5), "a");
    expectGradientsMatch({a}, [&] { return meanAllAv(scaleAv(a, -2.5)); });
}

TEST(Autograd, AddRowBroadcastGradients)
{
    Var x = parameter(randomMatrix(4, 3, 6), "x");
    Var bias = parameter(randomMatrix(1, 3, 7), "bias");
    expectGradientsMatch({x, bias}, [&] {
        return meanAllAv(mulAv(addRowBroadcastAv(x, bias),
                               addRowBroadcastAv(x, bias)));
    });
}

TEST(Autograd, ReluGradients)
{
    // Shift away from the kink at 0 so finite differences are valid.
    Var x = parameter(randomMatrix(3, 3, 8, 1.0, 2.0), "x");
    expectGradientsMatch({x}, [&] { return meanAllAv(reluAv(x)); });
}

TEST(Autograd, SigmoidGradients)
{
    Var x = parameter(randomMatrix(3, 3, 9), "x");
    expectGradientsMatch({x}, [&] {
        return meanAllAv(mulAv(sigmoidAv(x), sigmoidAv(x)));
    });
}

TEST(Autograd, TanhGradients)
{
    Var x = parameter(randomMatrix(3, 3, 10), "x");
    expectGradientsMatch({x}, [&] { return meanAllAv(tanhAv(x)); });
}

TEST(Autograd, GeluGradients)
{
    Var x = parameter(randomMatrix(3, 3, 11), "x");
    expectGradientsMatch({x}, [&] { return meanAllAv(geluAv(x)); });
}

TEST(Autograd, SoftmaxRowsGradients)
{
    Var x = parameter(randomMatrix(4, 5, 12), "x");
    Var w = parameter(randomMatrix(4, 5, 13), "w");
    expectGradientsMatch({x, w}, [&] {
        return meanAllAv(mulAv(softmaxRowsAv(x), w));
    });
}

TEST(Autograd, SoftmaxRowsSumToOne)
{
    Var x = constant(randomMatrix(6, 9, 14, 3.0));
    const Matrix y = softmaxRowsAv(x).value();
    for (size_t r = 0; r < y.rows(); ++r) {
        double total = 0.0;
        for (size_t c = 0; c < y.cols(); ++c) {
            EXPECT_GT(y.at(r, c), 0.0);
            total += y.at(r, c);
        }
        EXPECT_NEAR(total, 1.0, 1e-12);
    }
}

TEST(Autograd, UtilizationLawGradients)
{
    Var ab = parameter(randomMatrix(5, 2, 15, 0.2, 0.6), "ab");
    const std::vector<double> waves = {1, 2, 4, 9, 33};
    expectGradientsMatch({ab}, [&] {
        return meanAllAv(utilizationLawAv(ab, waves));
    });
}

TEST(Autograd, UtilizationLawValues)
{
    Matrix ab(2, 2);
    ab.at(0, 0) = 0.9;
    ab.at(0, 1) = 0.3;
    ab.at(1, 0) = 0.5;
    ab.at(1, 1) = 0.5;
    const Var out = utilizationLawAv(constant(std::move(ab)), {3.0, 1.0});
    EXPECT_NEAR(out.value().at(0, 0), 0.9 - 0.3 / 3.0, 1e-12);
    EXPECT_NEAR(out.value().at(1, 0), 0.0, 1e-12);
}

TEST(Autograd, ClampMinGradients)
{
    // Values away from the clamp threshold.
    Var x = parameter(randomMatrix(3, 3, 16, 0.3, 1.0), "x");
    expectGradientsMatch({x}, [&] {
        return meanAllAv(clampMinAv(x, 0.01));
    });
}

TEST(Autograd, ClampMinBlocksGradientBelowThreshold)
{
    Matrix v(1, 1);
    v.at(0, 0) = -5.0;
    Var x = parameter(std::move(v), "x");
    Var out = meanAllAv(clampMinAv(x, 0.5));
    backward(out);
    EXPECT_DOUBLE_EQ(out.value().at(0, 0), 0.5);
    EXPECT_DOUBLE_EQ(x.grad().at(0, 0), 0.0);
}

TEST(Autograd, ReciprocalScaleGradients)
{
    Var x = parameter(randomMatrix(4, 1, 17, 0.2, 2.0), "x");
    const std::vector<double> c = {1.0, 2.0, 3.0, 4.0};
    expectGradientsMatch({x}, [&] {
        return meanAllAv(reciprocalScaleAv(x, c));
    });
}

TEST(Autograd, TokenizeFeaturesGradients)
{
    Var x = parameter(randomMatrix(3, 4, 18), "x");
    Var w = parameter(randomMatrix(4, 5, 19), "w");
    Var b = parameter(randomMatrix(4, 5, 20), "b");
    expectGradientsMatch({x, w, b}, [&] {
        Var t = tokenizeFeaturesAv(x, w, b);
        return meanAllAv(mulAv(t, t));
    });
}

TEST(Autograd, AddBlockBroadcastGradients)
{
    Var x = parameter(randomMatrix(6, 4, 21), "x"); // 2 blocks of 3.
    Var pos = parameter(randomMatrix(3, 4, 22), "pos");
    expectGradientsMatch({x, pos}, [&] {
        Var y = addBlockBroadcastAv(x, pos);
        return meanAllAv(mulAv(y, y));
    });
}

TEST(Autograd, BlockAttentionGradients)
{
    const size_t seq = 3;
    const size_t dim = 4;
    Var q = parameter(randomMatrix(2 * seq, dim, 23), "q");
    Var k = parameter(randomMatrix(2 * seq, dim, 24), "k");
    Var v = parameter(randomMatrix(2 * seq, dim, 25), "v");
    expectGradientsMatch(
        {q, k, v},
        [&] {
            Var o = blockAttentionAv(q, k, v, seq, 2);
            return meanAllAv(mulAv(o, o));
        },
        1e-5, 5e-5);
}

TEST(Autograd, BlockAttentionBlocksAreIndependent)
{
    // Changing block 1's inputs must not change block 0's outputs.
    Matrix qm = randomMatrix(4, 4, 26);
    Matrix km = randomMatrix(4, 4, 27);
    Matrix vm = randomMatrix(4, 4, 28);
    const Matrix out1 =
        blockAttentionAv(constant(qm), constant(km), constant(vm), 2, 1)
            .value();
    for (size_t j = 0; j < 4; ++j) {
        qm.at(2, j) += 10.0;
        vm.at(3, j) -= 5.0;
    }
    const Matrix out2 =
        blockAttentionAv(constant(qm), constant(km), constant(vm), 2, 1)
            .value();
    for (size_t r = 0; r < 2; ++r)
        for (size_t j = 0; j < 4; ++j)
            EXPECT_DOUBLE_EQ(out1.at(r, j), out2.at(r, j));
}

TEST(Autograd, LayerNormRowsGradients)
{
    Var x = parameter(randomMatrix(3, 6, 29), "x");
    Var g = parameter(randomMatrix(1, 6, 30, 0.2, 1.0), "g");
    Var b = parameter(randomMatrix(1, 6, 31), "b");
    expectGradientsMatch(
        {x, g, b},
        [&] {
            Var y = layerNormRowsAv(x, g, b);
            return meanAllAv(mulAv(y, y));
        },
        1e-5, 5e-5);
}

TEST(Autograd, LayerNormNormalizesRows)
{
    Var x = constant(randomMatrix(5, 32, 32, 3.0, 7.0));
    Var g = constant(Matrix(1, 32, 1.0));
    Var b = constant(Matrix(1, 32));
    const Matrix y = layerNormRowsAv(x, g, b).value();
    for (size_t r = 0; r < y.rows(); ++r) {
        double mu = 0.0;
        for (size_t c = 0; c < y.cols(); ++c)
            mu += y.at(r, c);
        mu /= static_cast<double>(y.cols());
        EXPECT_NEAR(mu, 0.0, 1e-9);
    }
}

TEST(Autograd, MeanPoolBlocksGradients)
{
    Var x = parameter(randomMatrix(8, 3, 33), "x"); // 2 blocks of 4.
    expectGradientsMatch({x}, [&] {
        Var y = meanPoolBlocksAv(x, 4);
        return meanAllAv(mulAv(y, y));
    });
}

class LossGradients : public ::testing::TestWithParam<LossKind>
{
};

TEST_P(LossGradients, MatchesFiniteDifferences)
{
    const LossKind kind = GetParam();
    // Positive predictions/targets away from |p-t| = 0 kinks.
    Var pred = parameter(randomMatrix(6, 1, 34, 0.3, 3.0), "pred");
    const std::vector<double> target = {1.0, 2.0, 4.5, 1.5, 2.5, 5.0};
    expectGradientsMatch({pred}, [&] {
        return lossAv(pred, target, kind);
    });
}

INSTANTIATE_TEST_SUITE_P(AllLosses, LossGradients,
                         ::testing::Values(LossKind::Mse, LossKind::Mape,
                                           LossKind::Smape,
                                           LossKind::Huber));

TEST(Autograd, LossValuesMatchGraphValues)
{
    const std::vector<double> p = {1.0, 2.0, 3.0};
    const std::vector<double> t = {1.5, 1.5, 3.5};
    Matrix pm(3, 1);
    for (size_t i = 0; i < 3; ++i)
        pm.at(i, 0) = p[i];
    for (LossKind kind : {LossKind::Mse, LossKind::Mape, LossKind::Smape,
                          LossKind::Huber}) {
        const double graph_val =
            lossAv(constant(pm), t, kind).value().at(0, 0);
        EXPECT_NEAR(graph_val, lossValue(p, t, kind), 1e-12)
            << lossName(kind);
    }
}

TEST(Autograd, DiamondGraphAccumulates)
{
    // y = mean(x*x + x*x): gradient must be 4x/N, exercising fan-out.
    Var x = parameter(randomMatrix(2, 2, 35), "x");
    Var sq = mulAv(x, x);
    Var out = meanAllAv(addAv(sq, sq));
    backward(out);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(x.grad().raw()[i], 4.0 * x.value().raw()[i] / 4.0,
                    1e-12);
}

TEST(Autograd, GradientsAccumulateAcrossBackwardCalls)
{
    Var x = parameter(Matrix(1, 1, 3.0), "x");
    backward(meanAllAv(mulAv(x, x)));
    const double once = x.grad().at(0, 0);
    backward(meanAllAv(mulAv(x, x)));
    EXPECT_NEAR(x.grad().at(0, 0), 2.0 * once, 1e-12);
}

TEST(Autograd, ConstantsReceiveNoGradient)
{
    Var c = constant(Matrix(2, 2, 1.0));
    Var x = parameter(Matrix(2, 2, 2.0), "x");
    backward(meanAllAv(mulAv(c, x)));
    EXPECT_FALSE(c.requiresGrad());
    EXPECT_DOUBLE_EQ(c.grad().sum(), 0.0);
    EXPECT_GT(x.grad().sum(), 0.0);
}

TEST(Autograd, BackwardRequiresScalar)
{
    Var x = parameter(Matrix(2, 2, 1.0), "x");
    EXPECT_DEATH(backward(mulAv(x, x)), "scalar");
}

} // namespace
} // namespace neusight::nn
