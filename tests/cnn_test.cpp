/**
 * @file
 * Tests for the convolutional-workload substrate: implicit-GEMM conv
 * descriptors, batch-norm / pooling kernels, the ResNet-50 and VGG-16
 * builders (parameter counts and FLOPs vs the published architectures),
 * and training-graph synthesis through appendBackwardPass.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/cnn.hpp"
#include "graph/models.hpp"

namespace neusight::graph {
namespace {

using gpusim::DataType;
using gpusim::KernelDesc;
using gpusim::OpType;

TEST(ConvMath, OutputExtentMatchesConvArithmetic)
{
    EXPECT_EQ(convOutputExtent(224, 7, 2, 3), 112u); // ResNet stem.
    EXPECT_EQ(convOutputExtent(112, 3, 2, 1), 56u);  // Stem max-pool.
    EXPECT_EQ(convOutputExtent(56, 3, 1, 1), 56u);   // Same-pad 3x3.
    EXPECT_EQ(convOutputExtent(56, 1, 1, 0), 56u);   // Pointwise.
    EXPECT_EQ(convOutputExtent(7, 7, 7, 0), 1u);     // Global pool.
    EXPECT_EQ(convOutputExtent(224, 2, 2, 0), 112u); // VGG max-pool.
}

TEST(ConvMath, OutputExtentRejectsOversizedWindow)
{
    EXPECT_THROW(convOutputExtent(4, 7, 1, 0), std::runtime_error);
    EXPECT_THROW(convOutputExtent(8, 3, 0, 1), std::runtime_error);
}

TEST(Conv2d, LowersToImplicitGemmShape)
{
    // 3x3 same-pad conv on (8, 64, 56, 56) -> 128 channels.
    const KernelDesc d = makeConv2d(8, 64, 56, 56, 128, 3, 1, 1);
    EXPECT_EQ(d.type, OpType::FullyConnected);
    EXPECT_EQ(d.opName, "conv2d");
    ASSERT_EQ(d.outDims.size(), 2u);
    EXPECT_EQ(d.outDims[0], 8u * 56 * 56); // N * OH * OW rows.
    EXPECT_EQ(d.outDims[1], 128u);         // Cout columns.
    EXPECT_EQ(d.reduceDim, 64u * 3 * 3);   // Cin * KH * KW.
}

TEST(Conv2d, FlopsMatchDirectConvolutionCount)
{
    const KernelDesc d = makeConv2d(2, 16, 32, 32, 32, 3, 1, 1);
    // 2 * N*OH*OW * Cin*K*K * Cout multiply-accumulates.
    const double expected = 2.0 * (2.0 * 32 * 32) * (16.0 * 9) * 32.0;
    EXPECT_DOUBLE_EQ(d.flops, expected);
}

TEST(Conv2d, TrafficExcludesIm2colMaterialization)
{
    const KernelDesc d = makeConv2d(1, 64, 56, 56, 64, 3, 1, 1);
    // Feature map + filter + output, NOT the 9x-larger patch matrix.
    const double feature = 64.0 * 56 * 56;
    const double filter = 64.0 * 9 * 64;
    const double output = 56.0 * 56 * 64;
    EXPECT_DOUBLE_EQ(d.memBytes, (feature + filter + output) * 4.0);
    const double im2col = feature * 9.0;
    EXPECT_LT(d.memBytes, (im2col + filter + output) * 4.0);
}

TEST(Conv2d, StrideShrinksRowsQuadratically)
{
    const KernelDesc s1 = makeConv2d(1, 8, 64, 64, 8, 3, 1, 1);
    const KernelDesc s2 = makeConv2d(1, 8, 64, 64, 8, 3, 2, 1);
    EXPECT_EQ(s1.outDims[0], 64u * 64);
    EXPECT_EQ(s2.outDims[0], 32u * 32);
    EXPECT_NEAR(s1.flops / s2.flops, 4.0, 1e-9);
}

TEST(Conv2d, Fp16HalvesTraffic)
{
    const KernelDesc f32 = makeConv2d(4, 32, 28, 28, 64, 3, 1, 1);
    const KernelDesc f16 =
        makeConv2d(4, 32, 28, 28, 64, 3, 1, 1, DataType::Fp16);
    EXPECT_DOUBLE_EQ(f32.flops, f16.flops);
    EXPECT_DOUBLE_EQ(f32.memBytes, 2.0 * f16.memBytes);
}

TEST(BatchNorm, IsLayerNormFamilyWithChannelStats)
{
    const KernelDesc d = makeBatchNorm(8 * 56 * 56, 64);
    EXPECT_EQ(d.type, OpType::LayerNorm);
    EXPECT_EQ(d.opName, "batchnorm");
    EXPECT_EQ(d.outDims[0], 8u * 56 * 56);
    EXPECT_EQ(d.outDims[1], 64u);
    // Read + write each element plus four per-channel vectors.
    EXPECT_DOUBLE_EQ(d.memBytes,
                     (2.0 * 8 * 56 * 56 * 64 + 4.0 * 64) * 4.0);
}

TEST(Pool, IsMemoryBoundAndShrinksOutput)
{
    const KernelDesc d = makePool(8, 64, 112, 112, 3, 2, 1);
    EXPECT_EQ(d.type, OpType::Memory);
    const double in_elems = 8.0 * 64 * 112 * 112;
    const double out_elems = 8.0 * 64 * 56 * 56;
    EXPECT_DOUBLE_EQ(d.memBytes, (in_elems + out_elems) * 4.0);
    EXPECT_LT(d.intensity(), 1.0); // Memory bound by construction.
}

TEST(ResNet50, ParameterCountMatchesTorchvision)
{
    // torchvision resnet50: 25.557M parameters.
    EXPECT_NEAR(resNet50ParameterCount(), 25.56e6, 25.56e6 * 0.03);
}

TEST(ResNet50, ForwardFlopsMatchPublishedGflops)
{
    // ~4.1 GFLOPs MACs*2 per 224x224 image (published ~8.2 GFLOP with
    // multiply+add counted separately).
    const KernelGraph g = buildResNet50Graph(1);
    const double conv_fc_flops = [&] {
        double total = 0.0;
        for (const auto &n : g.nodes)
            if (n.kernel.type == OpType::FullyConnected)
                total += n.kernel.flops;
        return total;
    }();
    EXPECT_NEAR(conv_fc_flops, 8.2e9, 8.2e9 * 0.05);
}

TEST(ResNet50, HasSixteenBottlenecksAndFourDownsamples)
{
    const KernelGraph g = buildResNet50Graph(1);
    int convs = 0;
    int downsamples = 0;
    for (const auto &n : g.nodes) {
        if (n.kernel.opName == "conv2d")
            ++convs;
        if (n.label.find(".down.conv") != std::string::npos)
            ++downsamples;
    }
    // Stem + 16 blocks x 3 convs + 4 projection shortcuts = 53.
    EXPECT_EQ(convs, 53);
    EXPECT_EQ(downsamples, 4);
}

TEST(ResNet50, FlopsScaleLinearlyWithBatch)
{
    const double f1 = buildResNet50Graph(1).totalFlops();
    const double f8 = buildResNet50Graph(8).totalFlops();
    EXPECT_NEAR(f8 / f1, 8.0, 0.01);
}

TEST(ResNet50, TrainingGraphRoughlyTriplesForwardWork)
{
    const double fwd = buildResNet50Graph(4).totalFlops();
    const double train = buildResNet50TrainingGraph(4).totalFlops();
    EXPECT_GT(train, 2.5 * fwd);
    EXPECT_LT(train, 3.5 * fwd);
}

TEST(ResNet50, RejectsZeroBatch)
{
    EXPECT_THROW(buildResNet50Graph(0), std::runtime_error);
}

TEST(Vgg16, ParameterCountMatchesTorchvision)
{
    // torchvision vgg16: 138.36M parameters (dominated by head.fc1).
    EXPECT_NEAR(cnnParameterCount(buildVgg16Graph(1)), 138.36e6,
                138.36e6 * 0.02);
}

TEST(Vgg16, ForwardFlopsMatchPublishedGflops)
{
    // ~15.5 GMACs -> ~31 GFLOPs per image.
    const KernelGraph g = buildVgg16Graph(1);
    double conv_fc = 0.0;
    for (const auto &n : g.nodes)
        if (n.kernel.type == OpType::FullyConnected)
            conv_fc += n.kernel.flops;
    EXPECT_NEAR(conv_fc, 31.0e9, 31.0e9 * 0.05);
}

TEST(Vgg16, ThirteenConvsThreeLinears)
{
    const KernelGraph g = buildVgg16Graph(2);
    int convs = 0;
    int linears = 0;
    for (const auto &n : g.nodes) {
        if (n.kernel.opName == "conv2d")
            ++convs;
        if (n.kernel.opName == "linear")
            ++linears;
    }
    EXPECT_EQ(convs, 13);
    EXPECT_EQ(linears, 3);
}

TEST(CnnParams, IgnoresActivationsAndPools)
{
    KernelGraph g;
    g.add(gpusim::makeElementwise("relu", 1024, 1, 1.0), "relu");
    g.add(makePool(1, 8, 16, 16, 2, 2), "pool");
    EXPECT_DOUBLE_EQ(cnnParameterCount(g), 0.0);
}

TEST(CnnParams, CountsConvWeightsWithoutBias)
{
    KernelGraph g;
    g.add(makeConv2d(1, 16, 8, 8, 32, 3, 1, 1), "conv");
    EXPECT_DOUBLE_EQ(cnnParameterCount(g), 16.0 * 9 * 32);
    g.add(gpusim::makeLinear(1, 32, 10), "fc");
    EXPECT_DOUBLE_EQ(cnnParameterCount(g), 16.0 * 9 * 32 + 32.0 * 10 + 10.0);
}

/** Conv shapes from every ResNet-50 stage for property sweeps. */
struct ConvCase
{
    uint64_t batch, c_in, extent, c_out, kernel, stride, pad;
};

class ConvSweep : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvSweep, GemmLoweringInvariants)
{
    const ConvCase &c = GetParam();
    const KernelDesc d = makeConv2d(c.batch, c.c_in, c.extent, c.extent,
                                    c.c_out, c.kernel, c.stride, c.pad);
    const uint64_t out = convOutputExtent(c.extent, c.kernel, c.stride,
                                          c.pad);
    // Rows track the output feature map exactly.
    EXPECT_EQ(d.outDims[0], c.batch * out * out);
    // FLOPs = 2 * rows * K * cols, always positive and GEMM-consistent.
    EXPECT_DOUBLE_EQ(d.flops, 2.0 * static_cast<double>(d.outDims[0]) *
                                  static_cast<double>(d.reduceDim) *
                                  static_cast<double>(d.outDims[1]));
    // Implicit GEMM never reads more than the im2col equivalent.
    const double im2col_bytes =
        (static_cast<double>(d.outDims[0]) *
             static_cast<double>(d.reduceDim) +
         static_cast<double>(d.reduceDim) *
             static_cast<double>(d.outDims[1]) +
         static_cast<double>(d.outDims[0]) *
             static_cast<double>(d.outDims[1])) *
        4.0;
    EXPECT_LE(d.memBytes, im2col_bytes);
    // Arithmetic intensity grows with channel width.
    EXPECT_GT(d.intensity(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ResNetShapes, ConvSweep,
    ::testing::Values(ConvCase{1, 3, 224, 64, 7, 2, 3},
                      ConvCase{8, 64, 56, 64, 1, 1, 0},
                      ConvCase{8, 64, 56, 64, 3, 1, 1},
                      ConvCase{8, 64, 56, 256, 1, 1, 0},
                      ConvCase{4, 256, 56, 128, 1, 1, 0},
                      ConvCase{4, 128, 56, 128, 3, 2, 1},
                      ConvCase{2, 512, 28, 256, 1, 1, 0},
                      ConvCase{2, 1024, 14, 512, 1, 1, 0},
                      ConvCase{1, 512, 7, 2048, 1, 1, 0}));

} // namespace
} // namespace neusight::graph
