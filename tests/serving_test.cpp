/**
 * @file
 * Tests for the autoregressive-decode extension: KV-cache graph
 * structure, memory accounting, its memory-bound character, and the
 * trained predictor's behaviour on these far-out-of-distribution
 * shapes (the utilization-floor bound).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "core/predictor.hpp"
#include "eval/oracle.hpp"
#include "graph/cnn.hpp"
#include "graph/models.hpp"

namespace neusight {
namespace {

using graph::buildDecodeGraph;
using graph::findModel;
using graph::kvCacheBytes;
using gpusim::OpType;

TEST(Decode, GraphHasOneRowPerSequence)
{
    const auto &model = findModel("GPT3-XL");
    const auto g = buildDecodeGraph(model, 4, 2048);
    for (const auto &node : g.nodes) {
        if (node.kernel.opName == "linear") {
            // Every GEMM row count collapses to the batch (one token).
            EXPECT_EQ(node.kernel.outDims[0] % 4, 0u) << node.label;
            EXPECT_LE(node.kernel.outDims[0], 4u) << node.label;
        }
        if (node.kernel.opName == "bmm") {
            // Attention BMMs carry a single query row.
            EXPECT_EQ(node.kernel.outDims[1], 1u) << node.label;
        }
    }
}

TEST(Decode, AttentionSpansCachePlusOne)
{
    const auto &model = findModel("GPT2-Large");
    const uint64_t past = 777;
    const auto g = buildDecodeGraph(model, 2, past);
    bool saw_qk = false;
    for (const auto &node : g.nodes) {
        if (node.label.find(".attn.qk") == std::string::npos ||
            node.kernel.opName != "bmm")
            continue;
        saw_qk = true;
        EXPECT_EQ(node.kernel.outDims[2], past + 1) << node.label;
    }
    EXPECT_TRUE(saw_qk);
}

TEST(Decode, FlopsAreTinyComparedToPrefill)
{
    const auto &model = findModel("GPT3-XL");
    const double prefill =
        graph::buildInferenceGraph(model, 4).totalFlops();
    const double decode = buildDecodeGraph(model, 4, model.seq).totalFlops();
    // One token vs seq tokens: roughly a factor of seq less compute.
    EXPECT_LT(decode, prefill / 100.0);
}

TEST(Decode, IsMemoryBoundUnlikePrefill)
{
    const auto &model = findModel("GPT3-XL");
    const auto decode = buildDecodeGraph(model, 4, model.seq);
    const auto prefill = graph::buildInferenceGraph(model, 4);
    const double decode_intensity =
        decode.totalFlops() / decode.totalMemBytes();
    const double prefill_intensity =
        prefill.totalFlops() / prefill.totalMemBytes();
    EXPECT_LT(decode_intensity, 2.0);
    EXPECT_GT(prefill_intensity, 20.0 * decode_intensity);
}

TEST(Decode, MoeModelRoutesPerToken)
{
    const auto &moe = findModel("SwitchTrans");
    const auto g = buildDecodeGraph(moe, 8, 256);
    size_t routers = 0;
    for (const auto &node : g.nodes)
        if (node.label.find(".moe.router") != std::string::npos)
            ++routers;
    EXPECT_EQ(routers, moe.numLayers / 2);
}

TEST(Decode, RejectsBadArguments)
{
    const auto &model = findModel("GPT2-Large");
    EXPECT_THROW(buildDecodeGraph(model, 0, 128), std::runtime_error);
    EXPECT_THROW(buildDecodeGraph(model, 1, 0), std::runtime_error);
}

TEST(KvCache, GrowsLinearlyInAllDimensions)
{
    const auto &model = findModel("GPT3-XL");
    const double base = kvCacheBytes(model, 1, 1024);
    EXPECT_DOUBLE_EQ(kvCacheBytes(model, 2, 1024), 2.0 * base);
    EXPECT_DOUBLE_EQ(kvCacheBytes(model, 1, 2048), 2.0 * base);
    // fp16 halves it.
    EXPECT_DOUBLE_EQ(
        kvCacheBytes(model, 1, 1024, gpusim::DataType::Fp16), base / 2.0);
    // Two tensors (K and V) per layer per position.
    EXPECT_DOUBLE_EQ(base, 2.0 * static_cast<double>(model.numLayers) *
                               1024.0 * static_cast<double>(model.hidden) *
                               4.0);
}

/** Decode latency through the simulator behaves like serving reality. */
TEST(DecodeOracle, LatencyGrowsWithCacheLength)
{
    const eval::SimulatorOracle oracle;
    const auto &gpu = gpusim::findGpu("A100-40GB");
    const auto &model = findModel("GPT2-Large");
    double prev = 0.0;
    for (uint64_t past : {256u, 1024u, 4096u}) {
        const double ms = oracle.predictGraphMs(
            buildDecodeGraph(model, 4, past), gpu);
        EXPECT_GT(ms, prev);
        prev = ms;
    }
}

TEST(DecodeOracle, HigherBandwidthGpuDecodesFaster)
{
    const eval::SimulatorOracle oracle;
    const auto &model = findModel("GPT3-XL");
    const auto g = buildDecodeGraph(model, 4, 2048);
    const double v100 =
        oracle.predictGraphMs(g, gpusim::findGpu("V100"));
    const double a100 =
        oracle.predictGraphMs(g, gpusim::findGpu("A100-40GB"));
    const double h100 =
        oracle.predictGraphMs(g, gpusim::findGpu("H100"));
    EXPECT_LT(a100, v100);
    EXPECT_LT(h100, a100);
}

/** Trained-predictor behaviour on decode shapes (shared fixture). */
class DecodePrediction : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setQuiet(true);
        dataset::SamplerConfig sampler;
        sampler.bmmSamples = 600;
        sampler.fcSamples = 450;
        sampler.elementwiseSamples = 300;
        sampler.softmaxSamples = 200;
        sampler.layernormSamples = 200;
        const auto corpus = dataset::generateOperatorData(
            gpusim::nvidiaTrainingSet(), sampler);
        core::PredictorConfig cfg;
        cfg.train.epochs = 30;
        framework = new core::NeuSight(cfg);
        framework->train(corpus);
    }

    static void
    TearDownTestSuite()
    {
        delete framework;
        framework = nullptr;
    }

    static core::NeuSight *framework;
};

core::NeuSight *DecodePrediction::framework = nullptr;

TEST_F(DecodePrediction, StaysWithinAFactorOfGroundTruth)
{
    // Decode shapes are far outside every training range; the
    // utilization-floor bound must keep the forecast within a small
    // factor instead of letting it explode by orders of magnitude.
    const eval::SimulatorOracle oracle;
    const auto &model = findModel("GPT3-XL");
    const auto g = buildDecodeGraph(model, 4, 2048);
    for (const char *name : {"V100", "A100-40GB", "H100"}) {
        const auto &gpu = gpusim::findGpu(name);
        const double truth = oracle.predictGraphMs(g, gpu);
        const double guess = framework->predictGraphMs(g, gpu);
        EXPECT_LT(guess, 3.0 * truth) << name;
        EXPECT_GT(guess, truth / 3.0) << name;
    }
}

TEST_F(DecodePrediction, TransfersToConvolutionalWorkloads)
{
    // The predictor never saw a convolution; the implicit-GEMM lowering
    // routes conv kernels through the FC family, and the forecast should
    // land within a factor of ground truth on an unseen workload class.
    const eval::SimulatorOracle oracle;
    const auto g = graph::buildResNet50Graph(8);
    for (const char *name : {"V100", "A100-40GB", "H100"}) {
        const auto &gpu = gpusim::findGpu(name);
        const double truth = oracle.predictGraphMs(g, gpu);
        const double guess = framework->predictGraphMs(g, gpu);
        EXPECT_LT(std::abs(guess - truth) / truth, 0.6) << name;
    }
}

TEST_F(DecodePrediction, MemoryBoundFamiliesDoNotDominate)
{
    // The failure mode the floor prevents: EW/softmax/LN predictions
    // dwarfing the GEMMs that actually dominate decode.
    const auto &gpu = gpusim::findGpu("A100-40GB");
    const auto g = buildDecodeGraph(findModel("GPT3-XL"), 4, 2048);
    double gemm_ms = 0.0;
    double vector_ms = 0.0;
    for (const auto &node : g.nodes) {
        const double ms = framework->predictKernelMs(node.kernel, gpu);
        if (node.kernel.type == OpType::BatchedMatmul ||
            node.kernel.type == OpType::FullyConnected)
            gemm_ms += ms;
        else if (node.kernel.type != OpType::Memory)
            vector_ms += ms;
    }
    EXPECT_GT(gemm_ms, vector_ms);
}

} // namespace
} // namespace neusight
