#!/usr/bin/env python3
"""Socket front-end smoke test.

Spawns `neusight-serve --listen 127.0.0.1:0` (optionally sharded),
parses the ready line off stderr for the ephemeral port, drives a few
forecasts and a stats request over TCP, then delivers SIGTERM while a
request is in flight and asserts the whole process tree drains cleanly
(exit code 0, all replies well-formed).

Usage: net_smoke.py <path-to-neusight-serve> [--shards N]
"""

import json
import re
import signal
import socket
import subprocess
import sys
import time


def fail(msg):
    print("net_smoke: FAIL:", msg, file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: net_smoke.py <neusight-serve> [--shards N]")
    serve = sys.argv[1]
    shards = 1
    if "--shards" in sys.argv:
        shards = int(sys.argv[sys.argv.index("--shards") + 1])

    cmd = [
        serve, "--backend", "oracle", "--workers", "1",
        "--listen", "127.0.0.1:0", "--shards", str(shards),
    ]
    proc = subprocess.Popen(cmd, stderr=subprocess.PIPE)
    port = None
    deadline = time.time() + 30
    try:
        for raw in proc.stderr:
            line = raw.decode(errors="replace")
            match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
            if time.time() > deadline:
                break
        if port is None:
            fail("server never printed its ready line")

        sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        sock.settimeout(30)
        stream = sock.makefile("rwb")

        def request(obj):
            stream.write((json.dumps(obj) + "\n").encode())
            stream.flush()

        def reply():
            raw = stream.readline()
            if not raw:
                fail("connection closed before a reply")
            return json.loads(raw)

        # Three forecasts with distinct tags; replies may arrive out of
        # order (the worker pool finishes fast ones first).
        tags = []
        for i, batch in enumerate((1, 2, 4)):
            tag = "smoke%d" % i
            tags.append(tag)
            request({"op": "inference", "model": "BERT-Large",
                     "batch": batch, "gpu": "A100-40GB", "tag": tag})
        seen = set()
        for _ in tags:
            r = reply()
            if not r.get("ok"):
                fail("forecast failed: %s" % r.get("error"))
            seen.add(r.get("tag"))
        if seen != set(tags):
            fail("tags mismatch: %s" % seen)

        # Stats must aggregate (and in sharded mode, merge) registries.
        request({"op": "stats", "tag": "st"})
        r = reply()
        if not r.get("ok") or "stats" not in r:
            fail("stats request failed: %s" % r)
        if shards > 1 and r.get("shards") != shards:
            fail("stats reports %s live shards, want %d"
                 % (r.get("shards"), shards))
        if r["stats"].get("engine.instances") != shards:
            fail("merged stats shows %s engine instances, want %d"
                 % (r["stats"].get("engine.instances"), shards))

        # SIGTERM during load: put a request in flight, give the event
        # loop a beat to read it off the socket (the forecast itself
        # takes far longer), then signal. Drain semantics require the
        # accepted request to be answered and the process to exit 0 —
        # no crash, no hung worker, no orphaned shard.
        request({"op": "inference", "model": "GPT2-Large", "batch": 8,
                 "gpu": "A100-40GB", "tag": "last"})
        time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        r = reply()
        if r.get("tag") != "last" or "ok" not in r:
            fail("malformed reply during drain: %s" % r)
        sock.close()
    finally:
        try:
            code = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("server did not exit within 60s of SIGTERM")
    if code != 0:
        fail("server exited %d after SIGTERM drain" % code)
    print("net_smoke: OK (shards=%d)" % shards)


if __name__ == "__main__":
    main()
