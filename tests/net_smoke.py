#!/usr/bin/env python3
"""Socket front-end smoke test.

Spawns `neusight-serve --listen 127.0.0.1:0` (optionally sharded),
parses the ready line off stderr for the ephemeral port, drives a few
forecasts and a stats request over TCP, then delivers SIGTERM while a
request is in flight and asserts the whole process tree drains cleanly
(exit code 0, all replies well-formed).

With --chaos it instead runs the fault-tolerance smoke: SIGKILL a shard
worker mid-load and wedge another via --fault-spec, asserting the
self-healing invariants — every accepted request gets exactly one reply
(a result or a typed timeout/overload/unavailable error, never a hang),
the killed shard respawns and rejoins the ring, and the router's
request ledger balances (submitted == completed + rejected + timed_out).

Usage: net_smoke.py <path-to-neusight-serve> [--shards N] [--chaos]
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time

TYPED_ERRORS = {"timeout", "overload", "unavailable", "draining"}


def fail(msg):
    print("net_smoke: FAIL:", msg, file=sys.stderr)
    sys.exit(1)


def spawn_server(serve, extra_args):
    """Start neusight-serve and return (proc, port) once it listens."""
    cmd = [serve, "--backend", "oracle", "--workers", "1",
           "--listen", "127.0.0.1:0"] + extra_args
    proc = subprocess.Popen(cmd, stderr=subprocess.PIPE)
    deadline = time.time() + 30
    for raw in proc.stderr:
        line = raw.decode(errors="replace")
        match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        if match:
            return proc, int(match.group(1))
        if time.time() > deadline:
            break
    proc.kill()
    fail("server never printed its ready line")


class Client:
    """Line-oriented JSON client over one TCP connection."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=30)
        self.sock.settimeout(30)
        self.stream = self.sock.makefile("rwb")

    def request(self, obj):
        self.stream.write((json.dumps(obj) + "\n").encode())
        self.stream.flush()

    def reply(self):
        raw = self.stream.readline()
        if not raw:
            fail("connection closed before a reply")
        return json.loads(raw)

    def stats(self, tag):
        self.request({"op": "stats", "tag": tag})
        r = self.reply()
        if not r.get("ok") or "stats" not in r:
            fail("stats request failed: %s" % r)
        return r

    def close(self):
        self.sock.close()


def worker_pids(router_pid):
    """The shard workers are the router's direct children."""
    path = "/proc/%d/task/%d/children" % (router_pid, router_pid)
    with open(path) as f:
        return [int(p) for p in f.read().split()]


def drive_window(client, start, count, answered, errors):
    """Send `count` distinct forecasts and read every reply back.

    Replies may arrive out of order (and interleaved with retries after
    a shard death), so they are matched by tag. Each must be ok or
    carry a typed error code — a missing or untyped reply fails.
    """
    tags = set()
    for i in range(start, start + count):
        tag = "c%d" % i
        tags.add(tag)
        client.request({"op": "inference", "model": "BERT-Large",
                        "batch": (i % 512) + 1, "gpu": "A100-40GB",
                        "tag": tag})
    for _ in range(count):
        r = client.reply()
        tag = r.get("tag")
        if tag not in tags:
            fail("unexpected reply tag %s" % tag)
        tags.discard(tag)
        if r.get("ok"):
            answered[0] += 1
        elif r.get("code") in TYPED_ERRORS:
            errors[r["code"]] = errors.get(r["code"], 0) + 1
        else:
            fail("untyped failure reply: %s" % r)
    if tags:
        fail("unanswered requests: %s" % sorted(tags))


def await_recovery(client, shards, min_restarts, what):
    """Poll stats until every shard is live again and the supervisor
    has logged the respawn(s)."""
    deadline = time.time() + 30
    poll = 0
    while True:
        r = client.stats("rec%d" % poll)
        poll += 1
        stats = r["stats"]
        if (r.get("shards") == shards
                and stats.get("net.shard.restarts", 0) >= min_restarts):
            return stats
        if time.time() > deadline:
            fail("%s: no recovery (shards=%s restarts=%s)"
                 % (what, r.get("shards"),
                    stats.get("net.shard.restarts")))
        time.sleep(0.2)


def check_ledger(stats, what):
    submitted = stats.get("net.requests.submitted", 0)
    settled = (stats.get("net.requests.completed", 0)
               + stats.get("net.requests.rejected", 0)
               + stats.get("net.requests.timed_out", 0))
    if submitted != settled or submitted == 0:
        fail("%s: ledger off: submitted=%d settled=%d (%s)"
             % (what, submitted, settled,
                {k: v for k, v in stats.items()
                 if k.startswith("net.requests.")}))


def shutdown(proc, client):
    client.close()
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("server did not exit within 60s of SIGTERM")
    if code != 0:
        fail("server exited %d after SIGTERM drain" % code)


def chaos_kill_phase(serve, shards):
    """SIGKILL a worker mid-load: the router must answer everything,
    respawn the shard, and keep the request ledger balanced."""
    proc, port = spawn_server(serve, [
        "--shards", str(shards), "--request-timeout", "10000",
        "--heartbeat-interval", "200"])
    try:
        client = Client(port)
        answered, errors = [0], {}
        windows, per_window = 30, 20
        victim = None
        for w in range(windows):
            if w == 5:
                pids = worker_pids(proc.pid)
                if len(pids) != shards:
                    fail("expected %d workers, see %s" % (shards, pids))
                victim = pids[0]
                os.kill(victim, signal.SIGKILL)
            drive_window(client, w * per_window, per_window,
                         answered, errors)
        total = answered[0] + sum(errors.values())
        if total != windows * per_window:
            fail("kill phase: %d replies for %d requests"
                 % (total, windows * per_window))
        if answered[0] == 0:
            fail("kill phase: nothing succeeded")
        stats = await_recovery(client, shards, 1, "kill phase")
        if stats.get("net.shard.deaths", 0) < 1:
            fail("kill phase: death not recorded: %s" % stats)
        check_ledger(stats, "kill phase")
        shutdown(proc, client)
        print("net_smoke: kill phase OK (pid %d killed, ok=%d "
              "typed-errors=%s)" % (victim, answered[0], errors))
    finally:
        if proc.poll() is None:
            proc.kill()


def chaos_wedge_phase(serve):
    """Wedge shard 1 via --fault-spec: only the heartbeat can tell, so
    the router must detect the silence, kill and respawn the worker,
    and retry or time out everything stranded on it."""
    proc, port = spawn_server(serve, [
        "--shards", "2", "--request-timeout", "5000",
        "--heartbeat-interval", "200",
        "--fault-spec", "wedge:shard=1,after=40"])
    try:
        client = Client(port)
        answered, errors = [0], {}
        for w in range(12):
            drive_window(client, 1000 + w * 10, 10, answered, errors)
        stats = await_recovery(client, 2, 1, "wedge phase")
        check_ledger(stats, "wedge phase")
        if answered[0] == 0:
            fail("wedge phase: nothing succeeded")
        shutdown(proc, client)
        print("net_smoke: wedge phase OK (ok=%d typed-errors=%s)"
              % (answered[0], errors))
    finally:
        if proc.poll() is None:
            proc.kill()


def chaos_main(serve, shards):
    chaos_kill_phase(serve, max(shards, 3))
    chaos_wedge_phase(serve)
    print("net_smoke: OK (chaos)")


def main():
    if len(sys.argv) < 2:
        fail("usage: net_smoke.py <neusight-serve> [--shards N] "
             "[--chaos]")
    serve = sys.argv[1]
    shards = 1
    if "--shards" in sys.argv:
        shards = int(sys.argv[sys.argv.index("--shards") + 1])
    if "--chaos" in sys.argv:
        chaos_main(serve, shards)
        return

    cmd = [
        serve, "--backend", "oracle", "--workers", "1",
        "--listen", "127.0.0.1:0", "--shards", str(shards),
    ]
    proc = subprocess.Popen(cmd, stderr=subprocess.PIPE)
    port = None
    deadline = time.time() + 30
    try:
        for raw in proc.stderr:
            line = raw.decode(errors="replace")
            match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
            if time.time() > deadline:
                break
        if port is None:
            fail("server never printed its ready line")

        sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        sock.settimeout(30)
        stream = sock.makefile("rwb")

        def request(obj):
            stream.write((json.dumps(obj) + "\n").encode())
            stream.flush()

        def reply():
            raw = stream.readline()
            if not raw:
                fail("connection closed before a reply")
            return json.loads(raw)

        # Three forecasts with distinct tags; replies may arrive out of
        # order (the worker pool finishes fast ones first).
        tags = []
        for i, batch in enumerate((1, 2, 4)):
            tag = "smoke%d" % i
            tags.append(tag)
            request({"op": "inference", "model": "BERT-Large",
                     "batch": batch, "gpu": "A100-40GB", "tag": tag})
        seen = set()
        for _ in tags:
            r = reply()
            if not r.get("ok"):
                fail("forecast failed: %s" % r.get("error"))
            seen.add(r.get("tag"))
        if seen != set(tags):
            fail("tags mismatch: %s" % seen)

        # Stats must aggregate (and in sharded mode, merge) registries.
        request({"op": "stats", "tag": "st"})
        r = reply()
        if not r.get("ok") or "stats" not in r:
            fail("stats request failed: %s" % r)
        if shards > 1 and r.get("shards") != shards:
            fail("stats reports %s live shards, want %d"
                 % (r.get("shards"), shards))
        if r["stats"].get("engine.instances") != shards:
            fail("merged stats shows %s engine instances, want %d"
                 % (r["stats"].get("engine.instances"), shards))

        # SIGTERM during load: put a request in flight, give the event
        # loop a beat to read it off the socket (the forecast itself
        # takes far longer), then signal. Drain semantics require the
        # accepted request to be answered and the process to exit 0 —
        # no crash, no hung worker, no orphaned shard.
        request({"op": "inference", "model": "GPT2-Large", "batch": 8,
                 "gpu": "A100-40GB", "tag": "last"})
        time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        r = reply()
        if r.get("tag") != "last" or "ok" not in r:
            fail("malformed reply during drain: %s" % r)
        sock.close()
    finally:
        try:
            code = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("server did not exit within 60s of SIGTERM")
    if code != 0:
        fail("server exited %d after SIGTERM drain" % code)
    print("net_smoke: OK (shards=%d)" % shards)


if __name__ == "__main__":
    main()
