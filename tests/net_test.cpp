/**
 * @file
 * Tests for the socket front-end: LineFramer partial/merged/oversized
 * framing, consistent-hash ring stability and minimal disruption,
 * metrics-snapshot merging, and the SocketServer over a real loopback
 * TCP connection — round-trips, junk input, per-client admission,
 * engine-queue backpressure (counted in serve.rejected), a client
 * hanging up mid-write (the SIGPIPE regression), and graceful drain.
 * Plus the fault-tolerance layer: hash-ring re-add stability (a
 * respawned shard reclaims exactly its old keys), the respawn
 * scheduler's backoff/park policy, the fault-spec grammar, inline ping
 * answers, and request deadlines (typed "timeout" errors).
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/json.hpp"
#include "eval/oracle.hpp"
#include "net/fault.hpp"
#include "net/hash_ring.hpp"
#include "net/io.hpp"
#include "net/socket_server.hpp"
#include "net/supervisor.hpp"
#include "obs/merge.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace neusight {
namespace {

using common::Json;

// ---------------------------------------------------------------- framing

std::vector<std::string>
drainFramer(serve::LineFramer &framer, int *oversized = nullptr)
{
    std::vector<std::string> lines;
    std::string line;
    for (;;) {
        const serve::LineFramer::Event event = framer.next(line);
        if (event == serve::LineFramer::Event::None)
            return lines;
        if (event == serve::LineFramer::Event::Oversized) {
            if (oversized != nullptr)
                ++*oversized;
            continue;
        }
        lines.push_back(line);
    }
}

TEST(LineFramer, ReassemblesSplitAndMergedLines)
{
    serve::LineFramer framer;
    // One line split across three feeds, then two lines in one feed.
    framer.feed("{\"a\":", 5);
    EXPECT_TRUE(drainFramer(framer).empty());
    framer.feed("1", 1);
    framer.feed("}\n{\"b\":2}\n{\"c\"", 14);
    const auto lines = drainFramer(framer);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "{\"a\":1}");
    EXPECT_EQ(lines[1], "{\"b\":2}");
    // The tail arrives later and completes.
    framer.feed(":3}\r\n", 5); // CRLF from a telnet-ish client.
    const auto tail = drainFramer(framer);
    ASSERT_EQ(tail.size(), 1u);
    EXPECT_EQ(tail[0], "{\"c\":3}");
}

TEST(LineFramer, OversizedLineIsDiscardedInStreamingFashion)
{
    serve::LineFramer framer(8);
    const std::string huge(100, 'x');
    // Fed in small chunks: the framer must not buffer the whole line.
    for (size_t i = 0; i < huge.size(); i += 10)
        framer.feed(huge.data() + i, std::min<size_t>(10, huge.size() - i));
    framer.feed("\nok\n", 4);
    int oversized = 0;
    const auto lines = drainFramer(framer, &oversized);
    EXPECT_EQ(oversized, 1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "ok"); // Recovery after the discard.
    EXPECT_LE(framer.buffered(), 16u);
}

// --------------------------------------------------------------- hash ring

TEST(HashRing, SameKeySameShardAcrossInstances)
{
    net::HashRing a(4);
    net::HashRing b(4);
    for (int i = 0; i < 500; ++i) {
        const std::string key = "fingerprint-" + std::to_string(i);
        EXPECT_EQ(a.shardFor(key), b.shardFor(key));
    }
}

TEST(HashRing, EveryShardOwnsTraffic)
{
    net::HashRing ring(4);
    std::vector<int> hits(4, 0);
    for (int i = 0; i < 2000; ++i)
        ++hits[ring.shardFor("key-" + std::to_string(i))];
    for (int s = 0; s < 4; ++s)
        EXPECT_GT(hits[s], 0) << "shard " << s << " owns no keys";
}

TEST(HashRing, RemovalOnlyRemapsTheDeadShardsKeys)
{
    net::HashRing ring(4);
    std::unordered_map<std::string, size_t> before;
    for (int i = 0; i < 1000; ++i) {
        const std::string key = "key-" + std::to_string(i);
        before[key] = ring.shardFor(key);
    }
    ring.removeShard(2);
    EXPECT_EQ(ring.liveShards(), 3u);
    EXPECT_FALSE(ring.contains(2));
    for (const auto &[key, shard] : before) {
        const size_t now = ring.shardFor(key);
        if (shard != 2)
            EXPECT_EQ(now, shard) << key << " moved needlessly";
        else
            EXPECT_NE(now, 2u) << key << " still on the dead shard";
    }
}

// ----------------------------------------------------------- merged stats

TEST(MergeMetrics, SumsCountersAndMergesHistograms)
{
    obs::MetricsRegistry a;
    obs::MetricsRegistry b;
    a.counter("serve.submitted")->inc(3);
    b.counter("serve.submitted")->inc(5);
    a.gauge("engine.instances")->add(1);
    b.gauge("engine.instances")->add(1);
    b.counter("only.in.b")->inc(7);
    a.histogram("serve.e2e_us", "us")->record(100.0);
    a.histogram("serve.e2e_us", "us")->record(200.0);
    b.histogram("serve.e2e_us", "us")->record(400.0);

    const Json merged =
        obs::mergeMetricsSnapshots({a.toJson(), b.toJson()});
    EXPECT_EQ(merged.at("serve.submitted").asInt(), 8);
    EXPECT_EQ(merged.at("engine.instances").asInt(), 2);
    EXPECT_EQ(merged.at("only.in.b").asInt(), 7);
    const Json &hist = merged.at("serve.e2e_us");
    EXPECT_EQ(hist.at("count").asInt(), 3);
    // The merged quantiles stay inside the recorded range.
    EXPECT_GE(hist.at("p50").asDouble(), 90.0);
    EXPECT_LE(hist.at("p999").asDouble(), 450.0);
}

// ------------------------------------------------------- loopback sockets

/** A SocketServer over a SimulatorOracle engine, run on its own
 *  thread, plus a line-oriented test client. */
class LoopbackServer
{
  public:
    explicit LoopbackServer(net::SocketServerOptions options =
                                net::SocketServerOptions(),
                            serve::ServerOptions engine_options = {})
        : server(oracle, engine_options), sock(server, options),
          thread([this] { sock.run(); })
    {
    }

    ~LoopbackServer()
    {
        sock.requestStop();
        thread.join();
        server.stop();
    }

    eval::SimulatorOracle oracle;
    serve::ForecastServer server;
    net::SocketServer sock;
    std::thread thread;
};

class LineClient
{
  public:
    explicit LineClient(uint16_t port)
        : fd(net::connectTcp("127.0.0.1", port))
    {
        EXPECT_GE(fd, 0) << "connect failed: " << strerror(errno);
    }

    ~LineClient()
    {
        if (fd >= 0)
            net::closeFd(fd);
    }

    void send(const std::string &bytes)
    {
        ASSERT_TRUE(net::writeFully(fd, bytes.data(), bytes.size()));
    }

    /** Blocking read of the next reply line, parsed as JSON. */
    Json readReply()
    {
        std::string line;
        for (;;) {
            if (framer.next(line) == serve::LineFramer::Event::Line)
                return Json::parse(line);
            char buf[4096];
            const ssize_t n = net::readRetry(fd, buf, sizeof(buf));
            if (n <= 0)
                return Json(); // EOF / reset: callers assert on shape.
            framer.feed(buf, static_cast<size_t>(n));
        }
    }

    /** Close without reading; pending server writes will fail. */
    void hangUp()
    {
        net::closeFd(fd);
        fd = -1;
    }

    int fd;
    serve::LineFramer framer;
};

std::string
forecastLine(const std::string &model, uint64_t batch,
             const std::string &tag)
{
    Json json;
    json.set("op", "inference");
    json.set("model", model);
    json.set("batch", batch);
    json.set("gpu", "A100-40GB");
    json.set("tag", tag);
    return json.dump(0) + "\n";
}

TEST(SocketServer, RoundTripsSplitMergedAndJunkLines)
{
    LoopbackServer loop;
    LineClient client(loop.sock.port());

    // One request split across two writes.
    const std::string line = forecastLine("BERT-Large", 1, "split");
    client.send(line.substr(0, 10));
    client.send(line.substr(10));
    Json reply = client.readReply();
    EXPECT_TRUE(reply.boolOr("ok", false)) << reply.dump(0);
    EXPECT_EQ(reply.stringOr("tag", ""), "split");

    // Two requests plus a junk line in a single write: both answered,
    // the junk gets a clean error instead of killing the connection.
    client.send(forecastLine("BERT-Large", 2, "a") + "this is not json\n" +
                forecastLine("BERT-Large", 4, "b"));
    int ok = 0;
    int failed = 0;
    std::set<std::string> tags;
    for (int i = 0; i < 3; ++i) {
        reply = client.readReply();
        tags.insert(reply.stringOr("tag", ""));
        if (reply.boolOr("ok", false))
            ++ok;
        else
            ++failed;
    }
    EXPECT_EQ(ok, 2);
    EXPECT_EQ(failed, 1);
    EXPECT_TRUE(tags.count("a"));
    EXPECT_TRUE(tags.count("b"));

    // The connection is still healthy after the protocol error.
    client.send(forecastLine("BERT-Large", 8, "after"));
    reply = client.readReply();
    EXPECT_TRUE(reply.boolOr("ok", false));
    EXPECT_EQ(reply.stringOr("tag", ""), "after");
}

TEST(SocketServer, StatsRequestAnswersOverTheSocket)
{
    LoopbackServer loop;
    LineClient client(loop.sock.port());
    client.send(forecastLine("BERT-Large", 1, "warm"));
    EXPECT_TRUE(client.readReply().boolOr("ok", false));
    client.send("{\"op\":\"stats\",\"tag\":\"s\"}\n");
    const Json reply = client.readReply();
    EXPECT_TRUE(reply.boolOr("ok", false)) << reply.dump(0);
    ASSERT_TRUE(reply.has("stats"));
    EXPECT_GE(reply.at("stats").at("serve.completed").asInt(), 1);
    EXPECT_GE(reply.at("stats").at("net.lines").asInt(), 2);
}

TEST(SocketServer, MidWriteDisconnectDoesNotKillTheServer)
{
    LoopbackServer loop;
    {
        LineClient rude(loop.sock.port());
        // Queue work, then vanish without reading a single byte: the
        // completions land on a closed socket (EPIPE/ECONNRESET in the
        // flush path — fatal before SIGPIPE was ignored).
        std::string burst;
        for (int i = 0; i < 32; ++i)
            burst += forecastLine("BERT-Large",
                                  static_cast<uint64_t>(i + 1),
                                  "r" + std::to_string(i));
        rude.send(burst);
        rude.hangUp();
    }
    // Give the drain a moment to hit the dead socket, then prove the
    // server is still alive by serving a well-behaved client.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    LineClient polite(loop.sock.port());
    polite.send(forecastLine("BERT-Large", 2, "alive"));
    const Json reply = polite.readReply();
    EXPECT_TRUE(reply.boolOr("ok", false)) << reply.dump(0);
    EXPECT_EQ(reply.stringOr("tag", ""), "alive");
}

TEST(SocketServer, AdmissionLimitRejectsAndCountsInServeRejected)
{
    net::SocketServerOptions options;
    options.maxInFlightPerClient = 1;
    serve::ServerOptions engine_options;
    engine_options.workers = 1;
    LoopbackServer loop(options, engine_options);
    LineClient client(loop.sock.port());

    // A burst of distinct requests on one connection: with a single
    // in-flight slot, later ones must be rejected (not queued), and
    // every rejection lands in serve.rejected.
    std::string burst;
    constexpr int kBurst = 8;
    for (int i = 0; i < kBurst; ++i)
        burst += forecastLine("BERT-Large", static_cast<uint64_t>(i + 1),
                              "t" + std::to_string(i));
    client.send(burst);
    int ok = 0;
    int rejected = 0;
    for (int i = 0; i < kBurst; ++i) {
        const Json reply = client.readReply();
        if (reply.boolOr("ok", false)) {
            ++ok;
        } else {
            ++rejected;
            EXPECT_NE(reply.stringOr("error", "").find("admission"),
                      std::string::npos)
                << reply.dump(0);
        }
    }
    EXPECT_GE(ok, 1);
    EXPECT_GE(rejected, 1);
    EXPECT_GE(loop.server.stats().rejected,
              static_cast<uint64_t>(rejected));
}

TEST(SocketServer, EngineQueueBackpressureRejectsWhenFull)
{
    net::SocketServerOptions options;
    options.maxInFlightPerClient = 0; // Admission off: isolate queue.
    serve::ServerOptions engine_options;
    engine_options.workers = 1;
    engine_options.queueCapacity = 1;
    LoopbackServer loop(options, engine_options);
    LineClient client(loop.sock.port());

    // Distinct fingerprints (no coalescing): with a one-slot queue some
    // must bounce off the engine queue as overload rejections.
    std::string burst;
    constexpr int kBurst = 16;
    for (int i = 0; i < kBurst; ++i)
        burst += forecastLine("BERT-Large", static_cast<uint64_t>(i + 1),
                              "q" + std::to_string(i));
    client.send(burst);
    int ok = 0;
    int overloaded = 0;
    for (int i = 0; i < kBurst; ++i) {
        const Json reply = client.readReply();
        if (reply.boolOr("ok", false))
            ++ok;
        else if (reply.stringOr("error", "").find("overloaded") !=
                 std::string::npos)
            ++overloaded;
    }
    EXPECT_GE(ok, 1);
    EXPECT_GE(overloaded, 1);
    EXPECT_GE(loop.server.stats().rejected,
              static_cast<uint64_t>(overloaded));
}

TEST(SocketServer, OversizedRequestLineAnswersErrorAndCloses)
{
    net::SocketServerOptions options;
    options.maxLineBytes = 128;
    LoopbackServer loop(options);
    LineClient client(loop.sock.port());
    client.send(std::string(1024, 'x') + "\n");
    const Json reply = client.readReply();
    EXPECT_FALSE(reply.boolOr("ok", true));
    EXPECT_NE(reply.stringOr("error", "").find("exceeds"),
              std::string::npos);
    // The server closes after flushing the error.
    char buf[64];
    EXPECT_EQ(net::readRetry(client.fd, buf, sizeof(buf)), 0);
}

TEST(SocketServer, GracefulStopAnswersInFlightWork)
{
    LoopbackServer loop;
    LineClient client(loop.sock.port());
    std::string burst;
    constexpr int kBurst = 16;
    for (int i = 0; i < kBurst; ++i)
        burst += forecastLine("GPT2-Large", static_cast<uint64_t>(i + 1),
                              "g" + std::to_string(i));
    client.send(burst);
    // Let the epoll loop read (and accept) the whole burst — the
    // forecasts themselves take far longer than the reads — then stop
    // mid-computation: everything accepted must still be answered.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    loop.sock.requestStop(); // SIGTERM equivalent, mid-load.
    int answered = 0;
    for (int i = 0; i < kBurst; ++i) {
        const Json reply = client.readReply();
        if (reply.isObject() && reply.has("ok"))
            ++answered;
    }
    // Every accepted request is answered (ok or a drain rejection),
    // none silently dropped.
    EXPECT_EQ(answered, kBurst);
}

// -------------------------------------------------------- fault tolerance

TEST(HashRing, ReAddRestoresTheExactPreRemovalMapping)
{
    net::HashRing ring(5);
    std::unordered_map<std::string, size_t> before;
    for (int i = 0; i < 2000; ++i) {
        const std::string key = "key-" + std::to_string(i);
        before[key] = ring.shardFor(key);
    }
    // A shard dies and its respawned replacement rejoins: vnode labels
    // are deterministic, so the ring must return to the exact
    // pre-removal mapping — the newcomer reclaims precisely its old
    // keys and nobody else's cache goes cold.
    ring.removeShard(3);
    ring.addShard(3);
    EXPECT_EQ(ring.liveShards(), 5u);
    EXPECT_TRUE(ring.contains(3));
    for (const auto &[key, shard] : before)
        EXPECT_EQ(ring.shardFor(key), shard) << key << " remapped";
    // Re-adding a live shard is a no-op, not a double insertion.
    ring.addShard(3);
    EXPECT_EQ(ring.liveShards(), 5u);
    for (const auto &[key, shard] : before)
        EXPECT_EQ(ring.shardFor(key), shard) << key << " remapped";
}

TEST(RespawnScheduler, RapidDeathsBackOffExponentiallyThenPark)
{
    net::RespawnPolicy policy;
    policy.baseBackoffMs = 100;
    policy.maxBackoffMs = 400;
    policy.rapidWindowMs = 1000;
    policy.parkAfterRapidDeaths = 4;
    net::RespawnScheduler sched(policy);
    using Ms = std::chrono::milliseconds;
    net::RespawnScheduler::TimePoint t{}; // Synthetic clock.

    // A crash loop: every death lands well inside the rapid window.
    sched.recordSpawn(t);
    const auto d1 = sched.recordDeath(t + Ms(10));
    EXPECT_FALSE(d1.park);
    EXPECT_EQ(d1.delayMs, 100);
    sched.recordSpawn(t + Ms(120));
    const auto d2 = sched.recordDeath(t + Ms(130));
    EXPECT_FALSE(d2.park);
    EXPECT_EQ(d2.delayMs, 200);
    sched.recordSpawn(t + Ms(340));
    const auto d3 = sched.recordDeath(t + Ms(350));
    EXPECT_FALSE(d3.park);
    EXPECT_EQ(d3.delayMs, 400); // Clamped at maxBackoffMs.
    EXPECT_EQ(sched.rapidDeaths(), 3);
    sched.recordSpawn(t + Ms(760));
    const auto d4 = sched.recordDeath(t + Ms(770));
    EXPECT_TRUE(d4.park); // 4th consecutive rapid death: breaker trips.
}

TEST(RespawnScheduler, StableRunResetsTheBreaker)
{
    net::RespawnPolicy policy;
    policy.baseBackoffMs = 100;
    policy.maxBackoffMs = 400;
    policy.rapidWindowMs = 1000;
    policy.parkAfterRapidDeaths = 4;
    net::RespawnScheduler sched(policy);
    using Ms = std::chrono::milliseconds;
    net::RespawnScheduler::TimePoint t{};

    sched.recordSpawn(t);
    sched.recordDeath(t + Ms(10));
    sched.recordSpawn(t + Ms(120));
    sched.recordDeath(t + Ms(130));
    EXPECT_EQ(sched.rapidDeaths(), 2);
    // The respawn survives a full rapid window: a later one-off death
    // is routine and goes back to the base delay with breaker pressure
    // cleared.
    sched.recordSpawn(t + Ms(340));
    const auto after_stable = sched.recordDeath(t + Ms(340 + 1000));
    EXPECT_FALSE(after_stable.park);
    EXPECT_EQ(after_stable.delayMs, 100);
    EXPECT_EQ(sched.rapidDeaths(), 0);
}

TEST(FaultInjector, ParsesTheGrammarWithDefaults)
{
    const auto rules = net::FaultInjector::parseRules(
        "kill:shard=1,after=3; wedge ;delay:ms=7,every=4;"
        "truncate;garbage:every=5");
    ASSERT_EQ(rules.size(), 5u);
    EXPECT_EQ(rules[0].kind, net::FaultInjector::Kind::Kill);
    EXPECT_EQ(rules[0].shard, 1);
    EXPECT_EQ(rules[0].after, 3u);
    EXPECT_EQ(rules[1].kind, net::FaultInjector::Kind::Wedge);
    EXPECT_EQ(rules[1].shard, -1); // Unscoped: every shard.
    EXPECT_EQ(rules[1].after, 1u);
    EXPECT_EQ(rules[2].kind, net::FaultInjector::Kind::Delay);
    EXPECT_EQ(rules[2].delayMs, 7u);
    EXPECT_EQ(rules[2].every, 4u);
    EXPECT_EQ(rules[3].kind, net::FaultInjector::Kind::Truncate);
    EXPECT_EQ(rules[3].every, 16u);
    EXPECT_EQ(rules[4].kind, net::FaultInjector::Kind::Garbage);
    EXPECT_EQ(rules[4].every, 5u);

    // Strict parsing: typos die at startup, not silently at runtime.
    EXPECT_THROW(net::FaultInjector::parseRules("explode"),
                 std::exception);
    EXPECT_THROW(net::FaultInjector::parseRules("kill:when=3"),
                 std::exception);

    // parse() keeps only the rules scoped to the worker's shard.
    const auto spec = std::string("kill:shard=1,after=3;garbage:every=2");
    EXPECT_EQ(net::FaultInjector::parse(spec, 0).activeRules().size(),
              1u);
    EXPECT_EQ(net::FaultInjector::parse(spec, 1).activeRules().size(),
              2u);
    EXPECT_FALSE(net::FaultInjector::parse("", 0).active());
}

TEST(FaultInjector, ArmsOnTheExactOrdinalAndCorruptsWrites)
{
    auto kill = net::FaultInjector::parse("kill:after=3", 0);
    EXPECT_EQ(kill.onRequest(), net::FaultAction::None);
    EXPECT_EQ(kill.onRequest(), net::FaultAction::None);
    EXPECT_EQ(kill.onRequest(), net::FaultAction::Kill);
    EXPECT_EQ(kill.onRequest(), net::FaultAction::None); // Fires once.

    auto garbage = net::FaultInjector::parse("garbage:every=3", 0);
    const std::string original = "{\"ok\":true}\n";
    std::string payload = original;
    EXPECT_FALSE(garbage.onWrite(payload));
    EXPECT_FALSE(garbage.onWrite(payload));
    EXPECT_EQ(payload, original);
    EXPECT_TRUE(garbage.onWrite(payload)); // Every 3rd write batch.
    EXPECT_NE(payload, original);

    auto truncate = net::FaultInjector::parse("truncate:every=1", 0);
    std::string batch = "0123456789";
    EXPECT_TRUE(truncate.onWrite(batch));
    EXPECT_LT(batch.size(), 10u); // Tail half dropped.
    EXPECT_EQ(batch, "01234");
}

TEST(SocketServer, PingIsAnsweredInlineWithPong)
{
    LoopbackServer loop;
    LineClient client(loop.sock.port());
    client.send("{\"op\":\"ping\",\"tag\":\"hb7\"}\n");
    const Json reply = client.readReply();
    EXPECT_TRUE(reply.boolOr("ok", false)) << reply.dump(0);
    EXPECT_TRUE(reply.boolOr("pong", false)) << reply.dump(0);
    EXPECT_EQ(reply.stringOr("tag", ""), "hb7");
}

TEST(SocketServer, DeadlineAnswersTypedTimeoutUnderBacklog)
{
    net::SocketServerOptions options;
    options.requestTimeoutMs = 1;
    serve::ServerOptions engine_options;
    engine_options.workers = 1;
    engine_options.queueCapacity = 1024;
    LoopbackServer loop(options, engine_options);
    LineClient client(loop.sock.port());

    // 200 distinct forecasts queued behind one worker: the tail of the
    // queue cannot possibly be served within 1 ms, so deadlines must
    // fire — and every request must still get exactly one reply, ok or
    // a typed "timeout" error (no hangs, no double answers).
    std::string burst;
    constexpr int kBurst = 200;
    for (int i = 0; i < kBurst; ++i)
        burst += forecastLine("GPT2-Large", static_cast<uint64_t>(i + 1),
                              "d" + std::to_string(i));
    client.send(burst);
    int ok = 0;
    int timed_out = 0;
    for (int i = 0; i < kBurst; ++i) {
        const Json reply = client.readReply();
        ASSERT_TRUE(reply.isObject()) << "missing reply " << i;
        if (reply.boolOr("ok", false)) {
            ++ok;
            continue;
        }
        EXPECT_EQ(reply.stringOr("code", ""), "timeout")
            << reply.dump(0);
        ++timed_out;
    }
    EXPECT_EQ(ok + timed_out, kBurst);
    EXPECT_GE(timed_out, 1);
    EXPECT_GE(loop.server.metrics()->toJson().at("net.timeouts").asInt(),
              static_cast<int64_t>(timed_out));
}

TEST(SocketServer, PerRequestTimeoutOverridesTheServerDefault)
{
    net::SocketServerOptions options; // requestTimeoutMs = 0: unbounded.
    serve::ServerOptions engine_options;
    engine_options.workers = 1;
    engine_options.queueCapacity = 1024;
    LoopbackServer loop(options, engine_options);
    LineClient client(loop.sock.port());

    // A backlog of deadline-free requests, then one carrying its own
    // 1 ms "timeout_ms". Queued behind the backlog it must time out;
    // everything without a deadline must complete.
    std::string burst;
    constexpr int kBacklog = 150;
    for (int i = 0; i < kBacklog; ++i)
        burst += forecastLine("GPT2-Large", static_cast<uint64_t>(i + 1),
                              "b" + std::to_string(i));
    Json hurried = Json::parse(forecastLine("GPT2-Large", 999, "hurried"));
    hurried.set("timeout_ms", 1);
    burst += hurried.dump(0) + "\n";
    client.send(burst);
    bool hurried_timed_out = false;
    for (int i = 0; i < kBacklog + 1; ++i) {
        const Json reply = client.readReply();
        ASSERT_TRUE(reply.isObject()) << "missing reply " << i;
        if (reply.stringOr("tag", "") == "hurried") {
            EXPECT_FALSE(reply.boolOr("ok", true)) << reply.dump(0);
            hurried_timed_out =
                reply.stringOr("code", "") == "timeout";
        } else {
            EXPECT_TRUE(reply.boolOr("ok", false)) << reply.dump(0);
        }
    }
    EXPECT_TRUE(hurried_timed_out);
}

} // namespace
} // namespace neusight
