/**
 * @file
 * Tests for the public forecasting API (src/api/): registry lookup,
 * lazy backend construction, unknown-name errors derived from the
 * registered set, engine/direct-call parity (results must be
 * bit-identical to wiring the predictor by hand), per-backend cache
 * isolation inside the shared engine cache, and prediction-cache
 * persistence (JSON-lines snapshot round trip + engine warm start).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "api/engine.hpp"
#include "api/registry.hpp"
#include "common/logging.hpp"
#include "core/predictor.hpp"
#include "dist/collective.hpp"
#include "dist/parallel.hpp"
#include "eval/oracle.hpp"
#include "graph/models.hpp"

namespace neusight::api {
namespace {

using gpusim::findGpu;

/** Deterministic predictor: every kernel costs a fixed latency. */
class FixedPredictor : public graph::LatencyPredictor
{
  public:
    explicit FixedPredictor(double kernel_ms) : kernelMs(kernel_ms) {}

    std::string name() const override { return "Fixed"; }

    double
    predictKernelMs(const gpusim::KernelDesc &,
                    const gpusim::GpuSpec &) const override
    {
        return kernelMs;
    }

  private:
    double kernelMs;
};

TEST(Registry, BuiltinsAreRegisteredAndSorted)
{
    const auto registry = PredictorRegistry::withBuiltins();
    const std::vector<std::string> names = registry->names();
    const std::vector<std::string> expected = {"habitat", "li", "neusight",
                                               "oracle", "roofline"};
    EXPECT_EQ(names, expected);
    EXPECT_TRUE(registry->has("oracle"));
    EXPECT_FALSE(registry->has("gpt"));
    // Registration alone constructs nothing: training is lazy.
    for (const std::string &name : names)
        EXPECT_FALSE(registry->loaded(name)) << name;
    EXPECT_EQ(registry->namesJoined(),
              "habitat | li | neusight | oracle | roofline");
}

TEST(Registry, LazyLoadConstructsOncePerName)
{
    PredictorRegistry registry;
    int builds = 0;
    registry.add("counting", [&builds] {
        ++builds;
        return std::make_unique<FixedPredictor>(1.0);
    });
    EXPECT_FALSE(registry.loaded("counting"));
    EXPECT_EQ(builds, 0);
    const graph::LatencyPredictor &first = registry.get("counting");
    EXPECT_TRUE(registry.loaded("counting"));
    const graph::LatencyPredictor &second = registry.get("counting");
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(&first, &second);
}

TEST(Registry, UnknownNameErrorListsTheRegisteredBackends)
{
    const auto registry = PredictorRegistry::withBuiltins();
    try {
        registry->get("does-not-exist");
        FAIL() << "expected an unknown-backend error";
    } catch (const std::exception &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("does-not-exist"), std::string::npos);
        // The accepted list is derived from the registry itself, so
        // error text and reality cannot drift.
        for (const char *name :
             {"habitat", "li", "neusight", "oracle", "roofline"})
            EXPECT_NE(message.find(name), std::string::npos) << name;
    }
}

TEST(Registry, DuplicateRegistrationIsRejected)
{
    PredictorRegistry registry;
    registry.add("a", [] { return std::make_unique<FixedPredictor>(1.0); });
    EXPECT_THROW(registry.add("a",
                              [] {
                                  return std::make_unique<FixedPredictor>(
                                      2.0);
                              }),
                 std::runtime_error);
    const FixedPredictor external(3.0);
    EXPECT_THROW(registry.addExternal("a", external), std::runtime_error);
}

TEST(Registry, ExternalEntriesAreNotOwned)
{
    PredictorRegistry registry;
    const FixedPredictor external(1.5);
    registry.addExternal("ext", external);
    EXPECT_TRUE(registry.loaded("ext"));
    EXPECT_EQ(&registry.get("ext"), &external);
    EXPECT_EQ(registry.getOwned("ext"), nullptr);
}

/** Scaled-down trained framework shared by the parity tests. */
class EngineParity : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setQuiet(true);
        dataset::SamplerConfig sampler;
        sampler.bmmSamples = 150;
        sampler.fcSamples = 120;
        sampler.elementwiseSamples = 80;
        sampler.softmaxSamples = 60;
        sampler.layernormSamples = 60;
        core::PredictorConfig cfg;
        cfg.hiddenDim = 16;
        cfg.hiddenLayers = 2;
        cfg.train.epochs = 3;
        framework = new core::NeuSight(cfg);
        framework->train(dataset::generateOperatorData(
            gpusim::nvidiaTrainingSet(), sampler));
    }

    static void
    TearDownTestSuite()
    {
        delete framework;
        framework = nullptr;
    }

    /** An engine whose default backend is the shared tiny framework. */
    static ForecastEngine
    makeEngine(size_t cache_capacity)
    {
        auto registry = std::make_shared<PredictorRegistry>();
        registry->addExternal("tiny", *framework);
        EngineConfig config;
        config.defaultBackend = "tiny";
        config.registry = std::move(registry);
        config.cacheCapacity = cache_capacity;
        return ForecastEngine(std::move(config));
    }

    static core::NeuSight *framework;
};

core::NeuSight *EngineParity::framework = nullptr;

TEST_F(EngineParity, InferenceMatchesDirectNeuSightCall)
{
    ForecastRequest req;
    req.kind = RequestKind::Inference;
    req.model = "BERT-Large";
    req.batch = 2;
    req.gpu = findGpu("A100-40GB");

    const graph::KernelGraph g =
        graph::buildInferenceGraph(graph::findModel(req.model), req.batch);
    const double direct = framework->predictGraphMs(g, req.gpu);

    // Cached and uncached engines must both reproduce the hand-wired
    // forecast exactly (the cached kernel path is pinned bit-identical
    // elsewhere; this pins the engine's plumbing on top of it).
    for (const size_t capacity : {size_t{0}, size_t{4096}}) {
        const ForecastEngine engine = makeEngine(capacity);
        const ForecastResult result = engine.forecast(req);
        ASSERT_TRUE(result.ok) << result.error;
        EXPECT_DOUBLE_EQ(result.latencyMs, direct) << capacity;
        EXPECT_EQ(result.kernelCount, g.computeNodeCount());
    }
}

TEST_F(EngineParity, TrainingMatchesDirectNeuSightCall)
{
    ForecastRequest req;
    req.kind = RequestKind::Training;
    req.model = "GPT2-Large";
    req.batch = 4;
    req.gpu = findGpu("H100");

    const graph::KernelGraph g =
        graph::buildTrainingGraph(graph::findModel(req.model), req.batch);
    const double direct = framework->predictGraphMs(g, req.gpu);

    const ForecastEngine engine = makeEngine(4096);
    const ForecastResult result = engine.forecast(req);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_DOUBLE_EQ(result.latencyMs, direct);
}

TEST_F(EngineParity, HybridMatchesDirectHybridTrainingMs)
{
    ForecastRequest req;
    req.kind = RequestKind::Hybrid;
    req.model = "GPT2-Large";
    req.gpu = findGpu("H100");
    req.numGpus = 4;
    req.globalBatch = 8;
    req.hybrid.tpDegree = 2;
    req.hybrid.dpDegree = 2;
    req.hybrid.numMicroBatches = 2;

    const ForecastEngine engine = makeEngine(0);
    const ForecastResult result = engine.forecast(req);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.strategy, req.hybrid.describe());

    // Same forecast as composing the dist layer by hand with the
    // engine's default collective estimator.
    const dist::EstimatedCollectives comms("A100-NVLink", 600.0);
    dist::ServerConfig server;
    server.systemName = req.gpu.name + "-server";
    server.numGpus = req.numGpus;
    server.setGpu(req.gpu);
    const dist::HybridResult direct = dist::hybridTrainingMs(
        *framework, comms, server, graph::findModel(req.model),
        req.globalBatch, req.hybrid);
    EXPECT_DOUBLE_EQ(result.latencyMs, direct.latencyMs);
    EXPECT_DOUBLE_EQ(result.commBytes, direct.commBytes);
    EXPECT_EQ(result.oom, direct.oom);
}

TEST(Engine, SweepAnswersTheDirectWinner)
{
    const FixedPredictor predictor(0.25);
    auto registry = std::make_shared<PredictorRegistry>();
    registry->addExternal("fixed", predictor);
    EngineConfig config;
    config.defaultBackend = "fixed";
    config.registry = registry;
    config.cacheCapacity = 0;
    const ForecastEngine engine(std::move(config));

    ForecastRequest req;
    req.kind = RequestKind::HybridSweep;
    req.model = "GPT2-Large";
    req.gpu = findGpu("H100");
    req.numGpus = 2;
    req.globalBatch = 4;
    const ForecastResult result = engine.forecast(req);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_GT(result.latencyMs, 0.0);
    EXPECT_FALSE(result.strategy.empty());

    const dist::EstimatedCollectives comms("A100-NVLink", 600.0);
    dist::ServerConfig server;
    server.systemName = req.gpu.name + "-server";
    server.numGpus = req.numGpus;
    server.setGpu(req.gpu);
    const auto entries =
        dist::sweepStrategies(predictor, comms, server,
                              graph::findModel(req.model), req.globalBatch,
                              dist::SweepOptions{});
    ASSERT_FALSE(entries.empty());
    EXPECT_DOUBLE_EQ(result.latencyMs, entries.front().result.latencyMs);
    EXPECT_EQ(result.strategy, entries.front().config.describe());
}

TEST(Engine, UnknownBackendIsACleanErrorResult)
{
    const FixedPredictor predictor(1.0);
    auto registry = std::make_shared<PredictorRegistry>();
    registry->addExternal("only", predictor);
    EngineConfig config;
    config.defaultBackend = "only";
    config.registry = registry;
    const ForecastEngine engine(std::move(config));

    ForecastRequest req;
    req.model = "BERT-Large";
    req.gpu = findGpu("V100");
    req.backend = "missing";
    const ForecastResult result = engine.forecast(req);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("missing"), std::string::npos);
    EXPECT_NE(result.error.find("only"), std::string::npos);
}

TEST(Engine, PerBackendEntriesShareOneCacheWithoutMixing)
{
    // Two backends answering the same kernels with different numbers
    // must not trade cache entries even though they share one cache
    // (one capacity budget, one snapshot): the engine scopes keys per
    // backend.
    const FixedPredictor one(1.0);
    const FixedPredictor two(2.0);
    auto registry = std::make_shared<PredictorRegistry>();
    registry->addExternal("one", one);
    registry->addExternal("two", two);
    EngineConfig config;
    config.defaultBackend = "one";
    config.registry = registry;
    config.cacheCapacity = 4096;
    const ForecastEngine engine(std::move(config));

    ForecastRequest req;
    req.kind = RequestKind::Inference;
    req.model = "BERT-Large";
    req.batch = 2;
    req.gpu = findGpu("V100");

    const ForecastResult first = engine.forecast(req);
    ASSERT_TRUE(first.ok) << first.error;
    req.backend = "two";
    const ForecastResult second = engine.forecast(req);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_DOUBLE_EQ(second.latencyMs, 2.0 * first.latencyMs);

    // Re-asking each backend is answered from its own scoped entries —
    // still the right numbers, now from the shared cache.
    req.backend = "one";
    EXPECT_DOUBLE_EQ(engine.forecast(req).latencyMs, first.latencyMs);
    req.backend = "two";
    EXPECT_DOUBLE_EQ(engine.forecast(req).latencyMs, second.latencyMs);
    EXPECT_GT(engine.cacheStats().hits, 0u);
}

TEST(CachePersistence, SnapshotRoundTripsEveryDetailField)
{
    serve::PredictionCache cache(8, 1);
    core::PredictionDetail detail;
    detail.tileDims = {128, 64, 2};
    detail.numTiles = 42;
    detail.numWaves = 7;
    detail.alpha = 0.875;
    detail.beta = 1.0 / 3.0;
    detail.utilization = 0.6180339887498949;
    detail.rooflinePerSm = 123.456789e-3;
    detail.latencyMs = 0.7071067811865476;
    detail.memoryFallback = true;
    cache.insert("kernel|a", detail);
    core::PredictionDetail plain;
    plain.latencyMs = 2.5;
    cache.insert("kernel|b", plain);

    std::stringstream snapshot;
    EXPECT_EQ(cache.saveTo(snapshot), 2u);

    serve::PredictionCache restored(8, 1);
    EXPECT_EQ(restored.loadFrom(snapshot), 2u);
    EXPECT_EQ(restored.size(), 2u);
    core::PredictionDetail out;
    ASSERT_TRUE(restored.lookup("kernel|a", out));
    EXPECT_EQ(out.tileDims, detail.tileDims);
    EXPECT_EQ(out.numTiles, detail.numTiles);
    EXPECT_EQ(out.numWaves, detail.numWaves);
    EXPECT_DOUBLE_EQ(out.alpha, detail.alpha);
    EXPECT_DOUBLE_EQ(out.beta, detail.beta);
    EXPECT_DOUBLE_EQ(out.utilization, detail.utilization);
    EXPECT_DOUBLE_EQ(out.rooflinePerSm, detail.rooflinePerSm);
    EXPECT_DOUBLE_EQ(out.latencyMs, detail.latencyMs);
    EXPECT_TRUE(out.memoryFallback);
    ASSERT_TRUE(restored.lookup("kernel|b", out));
    EXPECT_DOUBLE_EQ(out.latencyMs, 2.5);
    EXPECT_FALSE(out.memoryFallback);
}

TEST(CachePersistence, SnapshotPreservesRecencyOrder)
{
    serve::PredictionCache cache(2, 1);
    core::PredictionDetail d;
    d.latencyMs = 1.0;
    cache.insert("old", d);
    cache.insert("recent", d);
    core::PredictionDetail out;
    ASSERT_TRUE(cache.lookup("old", out)); // Promote: "recent" is LRU.

    std::stringstream snapshot;
    cache.saveTo(snapshot);
    serve::PredictionCache restored(2, 1);
    restored.loadFrom(snapshot);
    // Insert into the full restored cache: the LRU victim must be the
    // entry that was LRU before the snapshot.
    restored.insert("new", d);
    EXPECT_FALSE(restored.lookup("recent", out));
    EXPECT_TRUE(restored.lookup("old", out));
}

TEST(CachePersistence, MalformedSnapshotLineReportsLineNumber)
{
    serve::PredictionCache cache(8, 1);
    std::stringstream snapshot("# comment\n\nnot json\n");
    try {
        cache.loadFrom(snapshot);
        FAIL() << "expected a parse error";
    } catch (const std::exception &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(Engine, WarmStartFromSnapshotServesWithoutMisses)
{
    setQuiet(true);
    const std::string path = "api_test_cache_snapshot.jsonl";

    ForecastRequest req;
    req.kind = RequestKind::Inference;
    req.model = "BERT-Large";
    req.batch = 2;
    req.gpu = findGpu("A100-40GB");
    req.backend = "oracle";

    double cold_latency = 0.0;
    {
        ForecastEngine engine(EngineConfig()
                                  .backend("oracle")
                                  .cache(4096)
                                  .saveCacheTo(path));
        const ForecastResult result = engine.forecast(req);
        ASSERT_TRUE(result.ok) << result.error;
        cold_latency = result.latencyMs;
        EXPECT_GT(engine.savePredictionCache(), 0u);
    }

    ForecastEngine warm(EngineConfig()
                            .backend("oracle")
                            .cache(4096)
                            .loadCacheFrom(path));
    EXPECT_GT(warm.predictionCache()->size(), 0u);
    const ForecastResult result = warm.forecast(req);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_DOUBLE_EQ(result.latencyMs, cold_latency);
    // Every kernel of the warm engine's first forecast comes from the
    // snapshot: hits only, no misses.
    const CacheStats stats = warm.cacheStats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);
    std::remove(path.c_str());
}

TEST(Workload, BuildWorkloadGraphCoversCnnAndTable5)
{
    const graph::KernelGraph resnet =
        buildWorkloadGraph("ResNet-50", 1, /*training=*/false);
    EXPECT_GT(resnet.computeNodeCount(), 0u);
    const graph::KernelGraph bert =
        buildWorkloadGraph("BERT-Large", 2, /*training=*/true);
    EXPECT_GT(bert.computeNodeCount(), 0u);
    EXPECT_THROW(buildWorkloadGraph("VGG-16", 1, /*training=*/true),
                 std::runtime_error);
}

TEST(Workload, ResolveGpuAcceptsDatabaseNames)
{
    EXPECT_EQ(ForecastEngine::resolveGpu("H100").name, "H100");
    EXPECT_THROW(ForecastEngine::resolveGpu("NoSuchGpu.json"),
                 std::runtime_error);
}

} // namespace
} // namespace neusight::api
