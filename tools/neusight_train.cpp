/**
 * @file
 * neusight-train: generate the Section-6.1 operator corpus on a set of
 * training GPUs, train the five utilization MLPs, and persist the
 * framework for the other tools.
 *
 *   neusight-train --out my_predictor.bin
 *   neusight-train --vendor amd --epochs 90 --hidden 128 --layers 8
 *   neusight-train --gpus P100,V100,T4 --scale 0.5
 */

#include <cstdio>

#include "common/argparse.hpp"
#include "tool_common.hpp"

namespace {

using namespace neusight;

int
run(int argc, const char *const *argv)
{
    common::ArgParser args(
        "neusight-train",
        "train the NeuSight utilization predictors and save them");
    args.addString("out", "neusight_nvidia.bin", "output predictor path");
    args.addString("vendor", "nvidia",
                   "training set: nvidia (P4,P100,V100,T4,A100-40GB) or "
                   "amd (MI100,MI210)");
    args.addString("gpus", "",
                   "override: comma list of GPU names / spec files");
    args.addDouble("scale", 1.0, "multiplier on per-family sample counts");
    args.addInt("epochs", 0, "training epochs (0 = per-family default)");
    args.addInt("hidden", 0, "MLP hidden width (0 = default; paper: 512)");
    args.addInt("layers", 0, "MLP hidden layers (0 = default; paper: 8)");
    args.addInt("seed", 2025, "dataset sampling seed");
    if (!args.parse(argc, argv))
        return 0;

    std::vector<gpusim::GpuSpec> gpus;
    if (!args.getString("gpus").empty()) {
        gpus = tools::resolveGpuList(args.getString("gpus"));
    } else if (args.getString("vendor") == "nvidia") {
        gpus = gpusim::nvidiaTrainingSet();
    } else if (args.getString("vendor") == "amd") {
        gpus = gpusim::amdTrainingSet();
    } else {
        fatal("--vendor must be 'nvidia' or 'amd'");
    }

    dataset::SamplerConfig sampler;
    const double scale = args.getDouble("scale");
    if (scale <= 0.0)
        fatal("--scale must be positive");
    sampler.bmmSamples = static_cast<size_t>(sampler.bmmSamples * scale);
    sampler.fcSamples = static_cast<size_t>(sampler.fcSamples * scale);
    sampler.elementwiseSamples =
        static_cast<size_t>(sampler.elementwiseSamples * scale);
    sampler.softmaxSamples =
        static_cast<size_t>(sampler.softmaxSamples * scale);
    sampler.layernormSamples =
        static_cast<size_t>(sampler.layernormSamples * scale);
    sampler.seed = static_cast<uint64_t>(args.getInt("seed"));

    core::PredictorConfig config;
    if (args.getInt("epochs") > 0)
        config.train.epochs =
            static_cast<size_t>(args.getInt("epochs"));
    if (args.getInt("hidden") > 0)
        config.hiddenDim = static_cast<size_t>(args.getInt("hidden"));
    if (args.getInt("layers") > 0)
        config.hiddenLayers = static_cast<size_t>(args.getInt("layers"));

    std::printf("generating corpus on %zu GPUs (seed %lld)...\n",
                gpus.size(), static_cast<long long>(args.getInt("seed")));
    const auto corpus = dataset::generateOperatorData(gpus, sampler);
    size_t total = 0;
    for (const auto &[type, data] : corpus) {
        std::printf("  %-10s %6zu samples\n", gpusim::opTypeName(type),
                    data.size());
        total += data.size();
    }
    std::printf("training 5 predictors on %zu samples...\n", total);

    core::NeuSight neusight(config);
    neusight.train(corpus);
    neusight.save(args.getString("out"));
    std::printf("saved trained framework to %s\n",
                args.getString("out").c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    tools::toolInit();
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
