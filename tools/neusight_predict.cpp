/**
 * @file
 * neusight-predict: forecast the latency of a deep learning workload on
 * a GPU without running it there — the framework's headline use case.
 *
 *   neusight-predict --model GPT3-XL --gpu H100 --batch 2
 *   neusight-predict --model my_model.json --gpu blackwell.json \
 *                    --phase training --breakdown
 *
 * Accepts Table-5 model names, "ResNet-50"/"VGG-16", or a JSON model
 * description; GPUs by Table-4 name or JSON spec file. The trained
 * predictor is cached at --predictor (trained on the five NVIDIA
 * training GPUs on first use).
 */

#include <cstdio>
#include <map>

#include "api/engine.hpp"
#include "common/argparse.hpp"
#include "common/table.hpp"
#include "graph/fusion.hpp"
#include "obs/trace.hpp"
#include "tool_common.hpp"

namespace {

using namespace neusight;

int
run(int argc, const char *const *argv)
{
    common::ArgParser args(
        "neusight-predict",
        "forecast DNN latency on a GPU without executing there");
    args.addString("model", "GPT3-XL",
                   "Table-5 name, ResNet-50, VGG-16, or model JSON path");
    args.addString("gpu", "H100", "Table-4 name or GPU spec JSON path");
    args.addInt("batch", 2, "batch size");
    args.addString("phase", "inference", "inference | training");
    args.addFlag("fp16", "use the FP16 tensor-core datapath");
    args.addFlag("fuse", "apply the operator-fusion pass first");
    args.addFlag("breakdown", "print the per-operator-family breakdown");
    args.addString("predictor", "neusight_nvidia.bin",
                   "trained predictor cache path");
    args.addString("precision", "f64",
                   "NeuSight MLP inference lane: f64 (bit-exact "
                   "reference) or f32 (SIMD single-precision)");
    args.addString("metrics-json", "",
                   "write the metrics-registry snapshot to this path "
                   "on exit");
    args.addString("trace-out", "",
                   "enable span tracing and write Chrome trace-event "
                   "JSON to this path on exit");
    if (!args.parse(argc, argv))
        return 0;

    if (!args.getString("trace-out").empty())
        obs::Tracer::global().setEnabled(true);

    const bool training = args.getString("phase") == "training";
    if (!training && args.getString("phase") != "inference")
        fatal("--phase must be 'inference' or 'training'");
    const gpusim::DataType dtype = args.getFlag("fp16")
                                       ? gpusim::DataType::Fp16
                                       : gpusim::DataType::Fp32;

    const gpusim::GpuSpec gpu =
        api::ForecastEngine::resolveGpu(args.getString("gpu"));
    graph::KernelGraph g = api::buildWorkloadGraph(
        args.getString("model"), static_cast<uint64_t>(args.getInt("batch")),
        training, dtype);
    if (args.getFlag("fuse"))
        g = graph::fuseGraph(g);

    const api::ForecastEngine engine(
        api::EngineConfig()
            .predictor(args.getString("predictor"))
            .precision(args.getString("precision")));
    const graph::LatencyPredictor &neusight = engine.backend();

    const double total_ms = neusight.predictGraphMs(g, gpu);
    std::printf("%s %s on %s (batch %lld%s%s): %.2f ms predicted\n",
                args.getString("model").c_str(),
                training ? "training-iteration" : "inference",
                gpu.name.c_str(),
                static_cast<long long>(args.getInt("batch")),
                args.getFlag("fp16") ? ", fp16" : "",
                args.getFlag("fuse") ? ", fused" : "", total_ms);
    std::printf("  kernels: %zu   total: %.2f GFLOPs, %.2f GB traffic\n",
                g.computeNodeCount(), g.totalFlops() / 1e9,
                g.totalMemBytes() / 1e9);

    if (args.getFlag("breakdown")) {
        std::map<gpusim::OpType, double> per_type;
        std::map<gpusim::OpType, size_t> counts;
        for (const auto &node : g.nodes) {
            if (node.kind != graph::NodeKind::Compute)
                continue;
            per_type[node.kernel.type] +=
                neusight.predictKernelMs(node.kernel, gpu);
            ++counts[node.kernel.type];
        }
        TextTable table("Per-operator-family breakdown",
                        {"family", "kernels", "latency (ms)", "share"});
        for (const auto &[type, ms] : per_type)
            table.addRow({gpusim::opTypeName(type),
                          std::to_string(counts[type]),
                          TextTable::num(ms, 2),
                          TextTable::pct(100.0 * ms / total_ms)});
        table.print();
    }
    if (!args.getString("metrics-json").empty()) {
        engine.metrics()->writeJson(args.getString("metrics-json"));
        std::fprintf(stderr,
                     "neusight-predict: wrote metrics snapshot to %s\n",
                     args.getString("metrics-json").c_str());
    }
    if (!args.getString("trace-out").empty()) {
        const size_t events = obs::Tracer::global().writeChromeTrace(
            args.getString("trace-out"));
        std::fprintf(stderr,
                     "neusight-predict: wrote %zu trace events to %s\n",
                     events, args.getString("trace-out").c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    tools::toolInit();
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
