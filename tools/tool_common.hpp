/**
 * @file
 * Shared plumbing for the tools/ command-line binaries: predictor cache
 * handling, comma-separated list parsing, and workload resolution that
 * accepts Table-5 names, the CNN builders, or JSON config files.
 */

#ifndef NEUSIGHT_TOOLS_TOOL_COMMON_HPP
#define NEUSIGHT_TOOLS_TOOL_COMMON_HPP

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "core/predictor.hpp"
#include "dataset/dataset.hpp"
#include "graph/cnn.hpp"
#include "graph/model_io.hpp"
#include "gpusim/spec_io.hpp"

namespace neusight::tools {

/** Split a comma-separated option value into its items. */
inline std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> items;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            items.push_back(item);
    return items;
}

/** Resolve every entry of a comma list through resolveGpu(). */
inline std::vector<gpusim::GpuSpec>
resolveGpuList(const std::string &value)
{
    std::vector<gpusim::GpuSpec> gpus;
    for (const std::string &name : splitList(value))
        gpus.push_back(gpusim::resolveGpu(name));
    if (gpus.empty())
        fatal("no GPUs given");
    return gpus;
}

/**
 * Load a trained NeuSight framework from @p path, or train one on
 * @p training_gpus and cache it there when the file does not exist yet.
 */
inline core::NeuSight
loadOrTrainPredictor(const std::string &path,
                     const std::vector<gpusim::GpuSpec> &training_gpus)
{
    if (!std::filesystem::exists(path))
        inform("predictor cache '" + path +
               "' not found; training from scratch (one-time cost)");
    return core::NeuSight::trainOrLoad(path, training_gpus,
                                       dataset::SamplerConfig{});
}

/**
 * Build the kernel graph for a workload name: a Table-5 transformer (or
 * JSON model file) at the given batch, or the built-in CNN workloads
 * "ResNet-50" / "VGG-16".
 */
inline graph::KernelGraph
buildWorkloadGraph(const std::string &model, uint64_t batch, bool training,
                   gpusim::DataType dtype)
{
    if (model == "ResNet-50")
        return training ? graph::buildResNet50TrainingGraph(batch, dtype)
                        : graph::buildResNet50Graph(batch, dtype);
    if (model == "VGG-16") {
        if (training)
            fatal("VGG-16 training graph not provided; use inference");
        return graph::buildVgg16Graph(batch, dtype);
    }
    const graph::ModelConfig config = graph::resolveModel(model);
    return training ? graph::buildTrainingGraph(config, batch, dtype)
                    : graph::buildInferenceGraph(config, batch, dtype);
}

} // namespace neusight::tools

#endif // NEUSIGHT_TOOLS_TOOL_COMMON_HPP
