/**
 * @file
 * Command-line helpers shared by the tools/ binaries: comma-separated
 * list parsing and GPU-list resolution. Everything heavier that used to
 * live here — predictor loading/training, workload-graph construction,
 * cache wiring — moved behind the api::ForecastEngine facade
 * (src/api/engine.hpp); the tools now drive the same entry point as
 * the serving layer and the examples.
 */

#ifndef NEUSIGHT_TOOLS_TOOL_COMMON_HPP
#define NEUSIGHT_TOOLS_TOOL_COMMON_HPP

#include <sstream>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "common/logging.hpp"
#include "net/io.hpp"

namespace neusight::tools {

/**
 * Process-wide setup every tool main runs first. Currently: ignore
 * SIGPIPE, so `neusight-serve ... | head` (or any client hanging up on
 * a socket mid-write) ends with a write error handled per-stream, not
 * a silent SIGPIPE death of the whole process.
 */
inline void
toolInit()
{
    net::ignoreSigpipe();
}

/** Split a comma-separated option value into its items. */
inline std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> items;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            items.push_back(item);
    return items;
}

/** Resolve every entry of a comma list through the engine's resolver
 *  (database names and spec-JSON paths both work). */
inline std::vector<gpusim::GpuSpec>
resolveGpuList(const std::string &value)
{
    std::vector<gpusim::GpuSpec> gpus;
    for (const std::string &name : splitList(value))
        gpus.push_back(api::ForecastEngine::resolveGpu(name));
    if (gpus.empty())
        fatal("no GPUs given");
    return gpus;
}

} // namespace neusight::tools

#endif // NEUSIGHT_TOOLS_TOOL_COMMON_HPP
