/**
 * @file
 * neusight-serve: the forecast server as a command-line service. Reads
 * JSON request lines (see serve/wire.hpp) from stdin (REPL: one answer
 * per line as it arrives) or from a script file (batch: submitted all at
 * once through the worker pool), prints one JSON result line per
 * request, and reports throughput and cache statistics on exit.
 *
 *   echo '{"op":"inference","model":"GPT3-XL","batch":4,"gpu":"H100"}' \
 *       | neusight-serve --workers 2
 *   cat requests.jsonl | neusight-serve --async --workers 8
 *   neusight-serve --script requests.jsonl --workers 8 --repeat 16
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <functional>
#include <future>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/engine.hpp"
#include "common/argparse.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"
#include "serve/prediction_cache.hpp"
#include "serve/server.hpp"
#include "net/fault.hpp"
#include "net/frontend.hpp"
#include "serve/wire.hpp"
#include "tool_common.hpp"

namespace {

using namespace neusight;

void
printResult(const serve::ForecastResult &result)
{
    std::printf("%s\n", serve::resultToJson(result).dump(0).c_str());
    std::fflush(stdout);
}

/**
 * --listen mode: hand the socket front-end (src/net/frontend.hpp) an
 * engine factory and serve until a stop signal drains. The factory runs
 * after fork in each shard worker, so shards>1 builds one engine (own
 * caches) per process.
 */
int
runListen(const common::ArgParser &args, const std::string &listen,
          size_t shards, size_t max_inflight,
          const std::function<std::shared_ptr<api::ForecastEngine>()>
              &buildEngine)
{
    if (!args.getString("script").empty() || args.getFlag("async") ||
        args.getInt("repeat") != 1)
        fatal("--listen serves sockets; --script/--async/--repeat drive "
              "stdin mode");
    if (shards > 1) {
        // These write process-local files / reports; N workers would
        // race on them. The "stats" wire op serves the merged view.
        if (!args.getString("cache-save").empty())
            fatal("--cache-save needs --shards 1 (every worker would "
                  "overwrite the same snapshot; use the per-shard "
                  "caches live instead)");
        if (!args.getString("metrics-json").empty())
            fatal("--metrics-json needs --shards 1 (query the merged "
                  "registry over the wire with {\"op\":\"stats\"})");
        if (!args.getString("trace-out").empty())
            fatal("--trace-out needs --shards 1");
        if (args.getInt("stats-interval") != 0)
            fatal("--stats-interval needs --shards 1");
    }

    std::string address = "127.0.0.1";
    std::string port_text = listen;
    const size_t colon = listen.rfind(':');
    if (colon != std::string::npos) {
        address = listen.substr(0, colon);
        port_text = listen.substr(colon + 1);
    }
    int64_t port = -1;
    try {
        size_t used = 0;
        port = std::stoll(port_text, &used);
        if (used != port_text.size())
            port = -1;
    } catch (const std::exception &) {
        port = -1;
    }
    if (port < 0 || port > 65535)
        fatal("--listen wants \"PORT\" or \"ADDR:PORT\" (got '" +
              listen + "')");

    const size_t workers = static_cast<size_t>(args.getInt("workers"));
    const size_t queue = static_cast<size_t>(args.getInt("queue"));
    // Shared with the epilogue below: only ever set by an in-process
    // factory call (shards == 1); worker processes fill their own copy.
    std::shared_ptr<api::ForecastEngine> local_engine;
    const auto factory = [&]() {
        auto engine = buildEngine();
        serve::ServerOptions options;
        options.workers = workers;
        options.queueCapacity = queue;
        options.cache = engine->predictionCache();
        local_engine = engine;
        return std::make_unique<serve::ForecastServer>(engine, options);
    };

    net::FrontendOptions fopt;
    fopt.bindAddress = address;
    fopt.port = static_cast<uint16_t>(port);
    fopt.shards = shards;
    fopt.maxInFlightPerClient = max_inflight;
    fopt.drainTimeoutMs = static_cast<int>(args.getInt("drain-timeout"));
    fopt.requestTimeoutMs =
        static_cast<int>(args.getInt("request-timeout"));
    fopt.heartbeatIntervalMs =
        static_cast<int>(args.getInt("heartbeat-interval"));
    fopt.faultSpec = args.getString("fault-spec");
    const int code = net::runFrontend(fopt, factory);

    if (shards == 1 && local_engine) {
        if (!args.getString("cache-save").empty()) {
            const size_t saved = local_engine->savePredictionCache();
            std::fprintf(stderr,
                         "neusight-serve: saved %zu cache entries to "
                         "%s\n",
                         saved, args.getString("cache-save").c_str());
        }
        if (!args.getString("metrics-json").empty()) {
            local_engine->metrics()->writeJson(
                args.getString("metrics-json"));
            std::fprintf(stderr,
                         "neusight-serve: wrote metrics snapshot to "
                         "%s\n",
                         args.getString("metrics-json").c_str());
        }
        if (!args.getString("trace-out").empty()) {
            const size_t events =
                obs::Tracer::global().writeChromeTrace(
                    args.getString("trace-out"));
            std::fprintf(stderr,
                         "neusight-serve: wrote %zu trace events to "
                         "%s\n",
                         events, args.getString("trace-out").c_str());
        }
    }
    return code;
}

int
run(int argc, const char *const *argv)
{
    // The accepted backend list comes from the registry itself, so the
    // help text below and the engine's unknown-backend error can never
    // drift from what is actually registered.
    const std::string backend_names =
        api::PredictorRegistry::withBuiltins()->namesJoined();

    common::ArgParser args(
        "neusight-serve",
        "serve latency forecasts over a JSON line protocol");
    args.addString("script", "",
                   "request script path (JSON lines); empty reads stdin");
    args.addInt("workers", 4, "worker threads");
    args.addInt("queue", 256, "request queue capacity");
    args.addInt("repeat", 1, "replay the script N times (batch mode)");
    args.addString("backend", "neusight",
                   "default forecast backend: " + backend_names +
                       " (requests may name any of these per line via "
                       "\"backend\")");
    args.addString("predictor", "neusight_nvidia.bin",
                   "trained predictor cache path (neusight backend)");
    args.addString("precision", "f64",
                   "NeuSight MLP inference lane: f64 (bit-exact "
                   "reference) or f32 (SIMD single-precision)");
    args.addInt("cache-capacity", 65536,
                "kernel-prediction cache entries");
    args.addFlag("no-cache", "disable the kernel-prediction cache");
    args.addString("cache-load", "",
                   "warm-start: load a kernel-prediction cache snapshot "
                   "(JSON lines written by --cache-save)");
    args.addString("cache-save", "",
                   "snapshot the kernel-prediction cache to this path "
                   "on exit");
    args.addInt("graph-cache-capacity", 128,
                "model-graph cache entries (constructed KernelGraphs "
                "memoized per request fingerprint)");
    args.addFlag("no-graph-cache", "disable the model-graph cache");
    args.addFlag("async",
                 "pipeline stdin with execution: submit every line as "
                 "it arrives and print results in submission order, so "
                 "one piped client saturates the worker pool");
    args.addString("metrics-json", "",
                   "write the metrics-registry snapshot (counters, "
                   "per-kind latency histograms) to this path on exit");
    args.addString("trace-out", "",
                   "enable span tracing and write a Chrome trace-event "
                   "JSON (chrome://tracing / Perfetto) to this path on "
                   "exit");
    args.addInt("stats-interval", 0,
                "print the metrics table to stderr every N seconds "
                "(0 disables)");
    args.addString("listen", "",
                   "serve over TCP instead of stdin: \"PORT\" or "
                   "\"ADDR:PORT\" (port 0 binds an ephemeral port, "
                   "reported on stderr); SIGTERM/SIGINT drain "
                   "gracefully");
    args.addInt("shards", 1,
                "worker processes behind --listen; requests route to "
                "shards by consistent-hashing their fingerprints, so "
                "each shard's caches stay hot and disjoint");
    args.addInt("max-inflight", 256,
                "per-connection in-flight requests before admission "
                "control rejects (--listen mode)");
    args.addInt("request-timeout", 30000,
                "default per-request deadline in ms (--listen mode); a "
                "request past it gets a typed \"timeout\" error; a "
                "request's own \"timeout_ms\" field overrides; 0 = "
                "unbounded");
    args.addInt("drain-timeout", 30000,
                "graceful-drain bound in ms after SIGTERM/SIGINT "
                "(--listen mode): answer what was accepted, then exit "
                "even if unflushed");
    args.addInt("heartbeat-interval", 1000,
                "router-to-shard heartbeat period in ms (--listen with "
                "--shards > 1); a shard missing 3 pongs is presumed "
                "wedged, killed and respawned; 0 disables");
    const char *env_fault = std::getenv("NEUSIGHT_FAULT_SPEC");
    args.addString("fault-spec", env_fault ? env_fault : "",
                   "chaos fault injection into the shard workers, e.g. "
                   "\"kill:shard=1,after=100;delay:ms=5,every=8\" "
                   "(kinds: kill|wedge|delay|truncate|garbage; defaults "
                   "from $NEUSIGHT_FAULT_SPEC; --listen mode)");
    if (!args.parse(argc, argv))
        return 0;

    if (!args.getString("trace-out").empty())
        obs::Tracer::global().setEnabled(true);

    const int64_t workers = args.getInt("workers");
    const int64_t queue = args.getInt("queue");
    const int64_t repeat = args.getInt("repeat");
    const int64_t capacity = args.getInt("cache-capacity");
    if (workers < 1 || queue < 1 || repeat < 1 || capacity < 1)
        fatal("--workers, --queue, --repeat and --cache-capacity must "
              "be at least 1");
    const int64_t graph_capacity = args.getInt("graph-cache-capacity");
    if (graph_capacity < 1)
        fatal("--graph-cache-capacity must be at least 1");
    const bool no_cache = args.getFlag("no-cache");
    if (no_cache && (!args.getString("cache-load").empty() ||
                     !args.getString("cache-save").empty()))
        fatal("--cache-load/--cache-save need the kernel-prediction "
              "cache (drop --no-cache)");

    const auto buildEngine = [&]() {
        auto built = std::make_shared<api::ForecastEngine>(
            api::EngineConfig()
                .backend(args.getString("backend"))
                .predictor(args.getString("predictor"))
                .precision(args.getString("precision"))
                .cache(no_cache ? 0 : static_cast<size_t>(capacity))
                .graphCache(args.getFlag("no-graph-cache")
                                ? 0
                                : static_cast<size_t>(graph_capacity))
                .loadCacheFrom(args.getString("cache-load"))
                .saveCacheTo(args.getString("cache-save")));
        if (!args.getString("cache-load").empty())
            std::fprintf(stderr,
                         "neusight-serve: warmed the prediction cache "
                         "with %zu entries from %s\n",
                         built->predictionCache()->size(),
                         args.getString("cache-load").c_str());
        // Load the default backend up front: an unknown --backend
        // fails here, with the registry-derived list in the error.
        built->backend();
        return built;
    };

    const std::string listen = args.getString("listen");
    const int64_t shards = args.getInt("shards");
    const int64_t max_inflight = args.getInt("max-inflight");
    if (shards < 1)
        fatal("--shards must be at least 1");
    if (max_inflight < 1)
        fatal("--max-inflight must be at least 1");
    if (listen.empty() && shards != 1)
        fatal("--shards needs --listen (sharding is a property of the "
              "socket front-end)");
    if (args.getInt("request-timeout") < 0 ||
        args.getInt("heartbeat-interval") < 0)
        fatal("--request-timeout and --heartbeat-interval must be "
              "non-negative (0 disables)");
    if (args.getInt("drain-timeout") < 1)
        fatal("--drain-timeout must be at least 1 ms");
    if (!args.getString("fault-spec").empty()) {
        if (listen.empty())
            fatal("--fault-spec needs --listen (faults inject into the "
                  "socket serving path)");
        // Validate the grammar now: a typo must fail at startup, not
        // silently inject nothing in the workers.
        net::FaultInjector::parseRules(args.getString("fault-spec"));
    }
    if (!listen.empty())
        return runListen(args, listen, static_cast<size_t>(shards),
                         static_cast<size_t>(max_inflight), buildEngine);

    auto engine = buildEngine();
    const std::shared_ptr<serve::PredictionCache> cache =
        engine->predictionCache();

    serve::ServerOptions options;
    options.workers = static_cast<size_t>(workers);
    options.queueCapacity = static_cast<size_t>(queue);
    options.cache = cache;
    serve::ForecastServer server(engine, options);

    // Periodic stderr metrics reporting: a detached-loop thread woken
    // early on shutdown so exit never waits out the interval.
    const int64_t stats_interval = args.getInt("stats-interval");
    if (stats_interval < 0)
        fatal("--stats-interval must be non-negative");
    std::mutex reporter_mutex;
    std::condition_variable reporter_cv;
    bool reporter_stop = false;
    std::thread reporter;
    if (stats_interval > 0) {
        reporter = std::thread([&] {
            std::unique_lock<std::mutex> lock(reporter_mutex);
            for (;;) {
                if (reporter_cv.wait_for(
                        lock, std::chrono::seconds(stats_interval),
                        [&] { return reporter_stop; }))
                    return;
                const std::string table = engine->metrics()->toTable();
                std::fprintf(stderr, "neusight-serve: metrics\n%s",
                             table.c_str());
            }
        });
    }

    const auto start = std::chrono::steady_clock::now();
    uint64_t answered = 0;
    uint64_t failed = 0;

    const std::string script = args.getString("script");
    if (!script.empty() && args.getFlag("async"))
        fatal("--async applies to stdin; --script already submits the "
              "whole script through the worker pool");
    if (script.empty() && args.getFlag("async")) {
        if (repeat != 1)
            fatal("--repeat needs --script (stdin is answered line by "
                  "line as it arrives)");
        // Async stdin: submit each line the moment it parses and print
        // completed results in submission order, so execution overlaps
        // with reading and one piped client keeps every worker busy.
        std::deque<std::future<serve::ForecastResult>> inflight;
        const auto emit = [&](serve::ForecastResult result) {
            ++answered;
            if (!result.ok)
                ++failed;
            printResult(result);
        };
        // Print the leading results that are ready (blocking = drain
        // everything, e.g. at EOF); order is submission order.
        const auto drain = [&](bool blocking) {
            while (!inflight.empty() &&
                   (blocking ||
                    inflight.front().wait_for(std::chrono::seconds(0)) ==
                        std::future_status::ready)) {
                emit(inflight.front().get());
                inflight.pop_front();
            }
        };
        std::string line;
        size_t line_no = 0;
        while (std::getline(std::cin, line)) {
            ++line_no;
            if (serve::isSkippableRequestLine(line))
                continue;
            try {
                inflight.push_back(server.submit(serve::requestFromJson(
                    common::Json::parse(line))));
            } catch (const std::exception &e) {
                serve::ForecastResult result;
                result.ok = false;
                result.error = "line " + std::to_string(line_no) + ": " +
                               e.what();
                std::promise<serve::ForecastResult> immediate;
                immediate.set_value(std::move(result));
                inflight.push_back(immediate.get_future());
            }
            drain(/*blocking=*/false);
            // Bound the completed-but-unprinted backlog behind a slow
            // head-of-line request.
            while (inflight.size() > 4096) {
                emit(inflight.front().get());
                inflight.pop_front();
            }
        }
        drain(/*blocking=*/true);
    } else if (script.empty()) {
        if (repeat != 1)
            fatal("--repeat needs --script (stdin is answered line by "
                  "line as it arrives)");
        // REPL: answer each line as it arrives (pipes still stream).
        std::string line;
        size_t line_no = 0;
        while (std::getline(std::cin, line)) {
            ++line_no;
            if (serve::isSkippableRequestLine(line))
                continue;
            serve::ForecastResult result;
            try {
                result = server
                             .submit(serve::requestFromJson(
                                 common::Json::parse(line)))
                             .get();
            } catch (const std::exception &e) {
                result.ok = false;
                result.error = "line " + std::to_string(line_no) + ": " +
                               e.what();
            }
            ++answered;
            if (!result.ok)
                ++failed;
            printResult(result);
        }
    } else {
        std::ifstream in(script);
        if (!in)
            fatal("cannot open request script '" + script + "'");
        const std::vector<serve::ForecastRequest> requests =
            serve::readRequestScript(in);
        if (requests.empty())
            fatal("request script '" + script + "' holds no requests");
        std::vector<std::future<serve::ForecastResult>> futures;
        futures.reserve(requests.size() * static_cast<size_t>(repeat));
        for (int64_t r = 0; r < repeat; ++r)
            for (const serve::ForecastRequest &req : requests)
                futures.push_back(server.submit(req));
        for (auto &future : futures) {
            serve::ForecastResult result = future.get();
            ++answered;
            if (!result.ok)
                ++failed;
            printResult(result);
        }
    }
    server.stop();
    if (reporter.joinable()) {
        {
            std::lock_guard<std::mutex> lock(reporter_mutex);
            reporter_stop = true;
        }
        reporter_cv.notify_all();
        reporter.join();
    }

    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    const serve::ServerStats stats = server.stats();
    std::fprintf(stderr,
                 "neusight-serve: %llu requests (%llu failed, %llu "
                 "coalesced) in %.1f ms (%.0f req/s, %zu workers)\n",
                 static_cast<unsigned long long>(answered),
                 static_cast<unsigned long long>(failed),
                 static_cast<unsigned long long>(stats.coalesced), wall_ms,
                 answered > 0 ? answered * 1e3 / wall_ms : 0.0,
                 stats.workers);
    if (cache) {
        const serve::CacheStats cs = cache->stats();
        std::fprintf(stderr,
                     "neusight-serve: cache %zu/%zu entries, %llu hits / "
                     "%llu misses (%.1f%% hit rate), %llu evictions\n",
                     cs.size, cs.capacity,
                     static_cast<unsigned long long>(cs.hits),
                     static_cast<unsigned long long>(cs.misses),
                     100.0 * cs.hitRate(),
                     static_cast<unsigned long long>(cs.evictions));
    }
    if (server.modelGraphCache()) {
        const serve::CacheStats gs = server.modelGraphCache()->stats();
        std::fprintf(stderr,
                     "neusight-serve: graph cache %zu/%zu graphs, %llu "
                     "hits / %llu misses (%.1f%% hit rate)\n",
                     gs.size, gs.capacity,
                     static_cast<unsigned long long>(gs.hits),
                     static_cast<unsigned long long>(gs.misses),
                     100.0 * gs.hitRate());
    }
    if (!args.getString("cache-save").empty()) {
        const size_t saved = engine->savePredictionCache();
        std::fprintf(stderr,
                     "neusight-serve: saved %zu cache entries to %s\n",
                     saved, args.getString("cache-save").c_str());
    }
    if (!args.getString("metrics-json").empty()) {
        engine->metrics()->writeJson(args.getString("metrics-json"));
        std::fprintf(stderr,
                     "neusight-serve: wrote metrics snapshot to %s\n",
                     args.getString("metrics-json").c_str());
    }
    if (!args.getString("trace-out").empty()) {
        const size_t events = obs::Tracer::global().writeChromeTrace(
            args.getString("trace-out"));
        std::fprintf(stderr,
                     "neusight-serve: wrote %zu trace events to %s\n",
                     events, args.getString("trace-out").c_str());
    }
    return failed == 0 ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    tools::toolInit();
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
