/**
 * @file
 * neusight-serve: the forecast server as a command-line service. Reads
 * JSON request lines (see serve/wire.hpp) from stdin (REPL: one answer
 * per line as it arrives) or from a script file (batch: submitted all at
 * once through the worker pool), prints one JSON result line per
 * request, and reports throughput and cache statistics on exit.
 *
 *   echo '{"op":"inference","model":"GPT3-XL","batch":4,"gpu":"H100"}' \
 *       | neusight-serve --workers 2
 *   cat requests.jsonl | neusight-serve --async --workers 8
 *   neusight-serve --script requests.jsonl --workers 8 --repeat 16
 */

#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/argparse.hpp"
#include "eval/oracle.hpp"
#include "serve/prediction_cache.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "tool_common.hpp"

namespace {

using namespace neusight;

void
printResult(const serve::ForecastResult &result)
{
    std::printf("%s\n", serve::resultToJson(result).dump(0).c_str());
    std::fflush(stdout);
}

int
run(int argc, const char *const *argv)
{
    common::ArgParser args(
        "neusight-serve",
        "serve latency forecasts over a JSON line protocol");
    args.addString("script", "",
                   "request script path (JSON lines); empty reads stdin");
    args.addInt("workers", 4, "worker threads");
    args.addInt("queue", 256, "request queue capacity");
    args.addInt("repeat", 1, "replay the script N times (batch mode)");
    args.addString("backend", "neusight",
                   "forecast backend: neusight | oracle (simulator "
                   "ground truth; no training, used by smoke tests)");
    args.addString("predictor", "neusight_nvidia.bin",
                   "trained predictor cache path (neusight backend)");
    args.addInt("cache-capacity", 65536,
                "kernel-prediction cache entries");
    args.addFlag("no-cache", "disable the kernel-prediction cache");
    args.addInt("graph-cache-capacity", 128,
                "model-graph cache entries (constructed KernelGraphs "
                "memoized per request fingerprint)");
    args.addFlag("no-graph-cache", "disable the model-graph cache");
    args.addFlag("async",
                 "pipeline stdin with execution: submit every line as "
                 "it arrives and print results in submission order, so "
                 "one piped client saturates the worker pool");
    if (!args.parse(argc, argv))
        return 0;

    const int64_t workers = args.getInt("workers");
    const int64_t queue = args.getInt("queue");
    const int64_t repeat = args.getInt("repeat");
    const int64_t capacity = args.getInt("cache-capacity");
    if (workers < 1 || queue < 1 || repeat < 1 || capacity < 1)
        fatal("--workers, --queue, --repeat and --cache-capacity must "
              "be at least 1");

    std::shared_ptr<serve::PredictionCache> cache;
    if (!args.getFlag("no-cache"))
        cache = std::make_shared<serve::PredictionCache>(
            static_cast<size_t>(capacity));

    // Keep whichever backend we build alive for the server's lifetime.
    std::optional<core::NeuSight> neusight;
    eval::SimulatorOracle oracle;
    std::optional<serve::CachedPredictor> cachedOracle;
    const graph::LatencyPredictor *backend = nullptr;
    const std::string backend_name = args.getString("backend");
    if (backend_name == "neusight") {
        neusight = tools::loadOrTrainPredictor(
            args.getString("predictor"), gpusim::nvidiaTrainingSet());
        neusight->attachCache(cache);
        backend = &*neusight;
    } else if (backend_name == "oracle") {
        if (cache) {
            cachedOracle.emplace(oracle, cache);
            backend = &*cachedOracle;
        } else {
            backend = &oracle;
        }
    } else {
        fatal("--backend must be neusight or oracle");
    }

    serve::ServerOptions options;
    options.workers = static_cast<size_t>(workers);
    options.queueCapacity = static_cast<size_t>(queue);
    options.cache = cache;
    const int64_t graph_capacity = args.getInt("graph-cache-capacity");
    if (graph_capacity < 1)
        fatal("--graph-cache-capacity must be at least 1");
    options.graphCacheCapacity =
        args.getFlag("no-graph-cache")
            ? 0
            : static_cast<size_t>(graph_capacity);
    serve::ForecastServer server(*backend, options);

    const auto start = std::chrono::steady_clock::now();
    uint64_t answered = 0;
    uint64_t failed = 0;

    const std::string script = args.getString("script");
    if (!script.empty() && args.getFlag("async"))
        fatal("--async applies to stdin; --script already submits the "
              "whole script through the worker pool");
    if (script.empty() && args.getFlag("async")) {
        if (repeat != 1)
            fatal("--repeat needs --script (stdin is answered line by "
                  "line as it arrives)");
        // Async stdin: submit each line the moment it parses and print
        // completed results in submission order, so execution overlaps
        // with reading and one piped client keeps every worker busy.
        std::deque<std::future<serve::ForecastResult>> inflight;
        const auto emit = [&](serve::ForecastResult result) {
            ++answered;
            if (!result.ok)
                ++failed;
            printResult(result);
        };
        // Print the leading results that are ready (blocking = drain
        // everything, e.g. at EOF); order is submission order.
        const auto drain = [&](bool blocking) {
            while (!inflight.empty() &&
                   (blocking ||
                    inflight.front().wait_for(std::chrono::seconds(0)) ==
                        std::future_status::ready)) {
                emit(inflight.front().get());
                inflight.pop_front();
            }
        };
        std::string line;
        size_t line_no = 0;
        while (std::getline(std::cin, line)) {
            ++line_no;
            if (serve::isSkippableRequestLine(line))
                continue;
            try {
                inflight.push_back(server.submit(serve::requestFromJson(
                    common::Json::parse(line))));
            } catch (const std::exception &e) {
                serve::ForecastResult result;
                result.ok = false;
                result.error = "line " + std::to_string(line_no) + ": " +
                               e.what();
                std::promise<serve::ForecastResult> immediate;
                immediate.set_value(std::move(result));
                inflight.push_back(immediate.get_future());
            }
            drain(/*blocking=*/false);
            // Bound the completed-but-unprinted backlog behind a slow
            // head-of-line request.
            while (inflight.size() > 4096) {
                emit(inflight.front().get());
                inflight.pop_front();
            }
        }
        drain(/*blocking=*/true);
    } else if (script.empty()) {
        if (repeat != 1)
            fatal("--repeat needs --script (stdin is answered line by "
                  "line as it arrives)");
        // REPL: answer each line as it arrives (pipes still stream).
        std::string line;
        size_t line_no = 0;
        while (std::getline(std::cin, line)) {
            ++line_no;
            if (serve::isSkippableRequestLine(line))
                continue;
            serve::ForecastResult result;
            try {
                result = server
                             .submit(serve::requestFromJson(
                                 common::Json::parse(line)))
                             .get();
            } catch (const std::exception &e) {
                result.ok = false;
                result.error = "line " + std::to_string(line_no) + ": " +
                               e.what();
            }
            ++answered;
            if (!result.ok)
                ++failed;
            printResult(result);
        }
    } else {
        std::ifstream in(script);
        if (!in)
            fatal("cannot open request script '" + script + "'");
        const std::vector<serve::ForecastRequest> requests =
            serve::readRequestScript(in);
        if (requests.empty())
            fatal("request script '" + script + "' holds no requests");
        std::vector<std::future<serve::ForecastResult>> futures;
        futures.reserve(requests.size() * static_cast<size_t>(repeat));
        for (int64_t r = 0; r < repeat; ++r)
            for (const serve::ForecastRequest &req : requests)
                futures.push_back(server.submit(req));
        for (auto &future : futures) {
            serve::ForecastResult result = future.get();
            ++answered;
            if (!result.ok)
                ++failed;
            printResult(result);
        }
    }
    server.stop();

    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    const serve::ServerStats stats = server.stats();
    std::fprintf(stderr,
                 "neusight-serve: %llu requests (%llu failed, %llu "
                 "coalesced) in %.1f ms (%.0f req/s, %zu workers)\n",
                 static_cast<unsigned long long>(answered),
                 static_cast<unsigned long long>(failed),
                 static_cast<unsigned long long>(stats.coalesced), wall_ms,
                 answered > 0 ? answered * 1e3 / wall_ms : 0.0,
                 stats.workers);
    if (cache) {
        const serve::CacheStats cs = cache->stats();
        std::fprintf(stderr,
                     "neusight-serve: cache %zu/%zu entries, %llu hits / "
                     "%llu misses (%.1f%% hit rate), %llu evictions\n",
                     cs.size, cs.capacity,
                     static_cast<unsigned long long>(cs.hits),
                     static_cast<unsigned long long>(cs.misses),
                     100.0 * cs.hitRate(),
                     static_cast<unsigned long long>(cs.evictions));
    }
    if (server.modelGraphCache()) {
        const serve::CacheStats gs = server.modelGraphCache()->stats();
        std::fprintf(stderr,
                     "neusight-serve: graph cache %zu/%zu graphs, %llu "
                     "hits / %llu misses (%.1f%% hit rate)\n",
                     gs.size, gs.capacity,
                     static_cast<unsigned long long>(gs.hits),
                     static_cast<unsigned long long>(gs.misses),
                     100.0 * gs.hitRate());
    }
    return failed == 0 ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
