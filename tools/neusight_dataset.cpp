/**
 * @file
 * neusight-dataset: generate the Section-6.1 operator corpus and dump it
 * as one CSV per operator family (kernel shape, GPU, measured latency,
 * profiler tile metadata) — the artifact's "collect datasets from
 * scratch" workflow against the simulator.
 *
 *   neusight-dataset --out-dir dataset/
 *   neusight-dataset --gpus V100,T4 --scale 0.25
 */

#include <cstdio>
#include <filesystem>

#include "common/argparse.hpp"
#include "common/csv.hpp"
#include "tool_common.hpp"

namespace {

using namespace neusight;

int
run(int argc, const char *const *argv)
{
    common::ArgParser args(
        "neusight-dataset",
        "generate and dump the operator training corpus as CSV");
    args.addString("out-dir", "dataset", "output directory");
    args.addString("vendor", "nvidia", "training set: nvidia or amd");
    args.addString("gpus", "",
                   "override: comma list of GPU names / spec files");
    args.addDouble("scale", 1.0, "multiplier on per-family sample counts");
    args.addInt("seed", 2025, "sampling seed");
    if (!args.parse(argc, argv))
        return 0;

    std::vector<gpusim::GpuSpec> gpus;
    if (!args.getString("gpus").empty())
        gpus = tools::resolveGpuList(args.getString("gpus"));
    else if (args.getString("vendor") == "amd")
        gpus = gpusim::amdTrainingSet();
    else
        gpus = gpusim::nvidiaTrainingSet();

    dataset::SamplerConfig sampler;
    const double scale = args.getDouble("scale");
    if (scale <= 0.0)
        fatal("--scale must be positive");
    sampler.bmmSamples = static_cast<size_t>(sampler.bmmSamples * scale);
    sampler.fcSamples = static_cast<size_t>(sampler.fcSamples * scale);
    sampler.elementwiseSamples =
        static_cast<size_t>(sampler.elementwiseSamples * scale);
    sampler.softmaxSamples =
        static_cast<size_t>(sampler.softmaxSamples * scale);
    sampler.layernormSamples =
        static_cast<size_t>(sampler.layernormSamples * scale);
    sampler.seed = static_cast<uint64_t>(args.getInt("seed"));

    const auto corpus = dataset::generateOperatorData(gpus, sampler);

    const std::filesystem::path dir(args.getString("out-dir"));
    std::filesystem::create_directories(dir);
    for (const auto &[type, data] : corpus) {
        std::string file = gpusim::opTypeName(type);
        for (char &c : file)
            c = static_cast<char>(std::tolower(c));
        const std::string path = (dir / (file + ".csv")).string();
        CsvWriter csv(
            path, {"op_name", "gpu", "out_dims", "reduce_dim", "flops",
                   "mem_bytes", "tile_dims", "num_tiles", "num_waves",
                   "latency_ms"});
        for (const auto &sample : data.samples) {
            std::string out_dims;
            for (size_t i = 0; i < sample.desc.outDims.size(); ++i) {
                if (i)
                    out_dims += "x";
                out_dims += std::to_string(sample.desc.outDims[i]);
            }
            std::string tile_dims;
            for (size_t i = 0; i < sample.launch.tile.dims.size(); ++i) {
                if (i)
                    tile_dims += "x";
                tile_dims += std::to_string(sample.launch.tile.dims[i]);
            }
            csv.writeRow({sample.desc.opName, sample.gpuName, out_dims,
                          std::to_string(sample.desc.reduceDim),
                          std::to_string(sample.desc.flops),
                          std::to_string(sample.desc.memBytes), tile_dims,
                          std::to_string(sample.launch.numTiles),
                          std::to_string(sample.launch.numWaves),
                          std::to_string(sample.latencyMs)});
        }
        std::printf("%-10s %6zu samples -> %s\n", gpusim::opTypeName(type),
                    data.size(), path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    tools::toolInit();
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
