/**
 * @file
 * neusight-distributed: forecast the training-iteration latency of a
 * model distributed over a multi-GPU server (Section 5.1) under data,
 * tensor, or pipeline parallelism — or all three side by side.
 *
 *   neusight-distributed --model GPT2-Large --gpu H100 --num-gpus 4
 *   neusight-distributed --model GPT3-XL --strategy tensor \
 *                        --global-batch 16
 */

#include <cstdio>

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "dist/parallel.hpp"
#include "tool_common.hpp"

namespace {

using namespace neusight;

int
run(int argc, const char *const *argv)
{
    common::ArgParser args(
        "neusight-distributed",
        "forecast distributed training latency on a multi-GPU server");
    args.addString("model", "GPT2-Large",
                   "Table-5 name or model JSON path");
    args.addString("gpu", "H100", "GPU name or spec JSON path");
    args.addString("gpu-json", "",
                   "path to a GPU spec JSON file (overrides --gpu; "
                   "forecast a hypothetical GPU from its public numbers)");
    args.addInt("num-gpus", 4, "GPUs in the server");
    args.addInt("global-batch", 4, "global batch size");
    args.addString("strategy", "all", "data | tensor | pipeline | all");
    args.addInt("micro-batches", 1,
                "pipeline micro-batches per iteration");
    args.addString("schedule", "gpipe",
                   "pipeline schedule: gpipe | 1f1b");
    args.addDouble("link-gbps", 0.0,
                   "peak GPU-to-GPU bandwidth GB/s (0 = GPU spec value)");
    args.addString("reference-system", "A100-NVLink",
                   "in-hand server used to calibrate link utilization");
    args.addDouble("reference-link-gbps", 600.0,
                   "peak link bandwidth of the reference system");
    args.addString("predictor", "neusight_nvidia.bin",
                   "trained predictor cache path");
    if (!args.parse(argc, argv))
        return 0;

    const graph::ModelConfig model =
        graph::resolveModel(args.getString("model"));
    // --gpu already accepts a spec path; --gpu-json forces file
    // resolution (a hypothetical GPU can shadow a database name).
    const std::string gpu_json = args.getString("gpu-json");
    const gpusim::GpuSpec gpu =
        gpu_json.empty() ? gpusim::resolveGpu(args.getString("gpu"))
                         : gpusim::loadGpuSpecs(gpu_json).front();

    dist::ServerConfig server;
    server.systemName = gpu.name + "-server";
    // Pin the resolved spec so JSON-defined GPUs work in the library's
    // distributed forecasts (no findGpu round-trip on the name).
    server.setGpu(gpu);
    server.numGpus = static_cast<int>(args.getInt("num-gpus"));
    server.linkGBps = args.getDouble("link-gbps");
    if (server.numGpus < 2)
        fatal("--num-gpus must be at least 2");

    std::vector<dist::Parallelism> strategies;
    const std::string choice = args.getString("strategy");
    if (choice == "data" || choice == "all")
        strategies.push_back(dist::Parallelism::Data);
    if (choice == "tensor" || choice == "all")
        strategies.push_back(dist::Parallelism::Tensor);
    if (choice == "pipeline" || choice == "all")
        strategies.push_back(dist::Parallelism::Pipeline);
    if (strategies.empty())
        fatal("--strategy must be data, tensor, pipeline, or all");

    dist::PipelineConfig pipeline;
    pipeline.numMicroBatches =
        static_cast<int>(args.getInt("micro-batches"));
    if (pipeline.numMicroBatches < 1)
        fatal("--micro-batches must be at least 1");
    const std::string schedule = args.getString("schedule");
    if (schedule == "gpipe")
        pipeline.schedule = dist::PipelineSchedule::GPipe;
    else if (schedule == "1f1b")
        pipeline.schedule = dist::PipelineSchedule::OneFOneB;
    else
        fatal("--schedule must be gpipe or 1f1b");

    if (args.getInt("global-batch") < 1)
        fatal("--global-batch must be at least 1");
    const uint64_t global_batch =
        static_cast<uint64_t>(args.getInt("global-batch"));
    const core::NeuSight neusight = tools::loadOrTrainPredictor(
        args.getString("predictor"), gpusim::nvidiaTrainingSet());
    const dist::EstimatedCollectives comms(
        args.getString("reference-system"),
        args.getDouble("reference-link-gbps"));

    TextTable table(model.name + " training on " +
                        std::to_string(server.numGpus) + "x " + gpu.name +
                        " (global batch " +
                        std::to_string(args.getInt("global-batch")) + ")",
                    {"strategy", "predicted (ms)", "comm GB", "note"});
    // Pre-validate each strategy's preconditions so a bad combination
    // reports cleanly instead of reaching the library's abort/throw
    // paths: skip the row under --strategy all, reject an explicit ask.
    for (dist::Parallelism strategy : strategies) {
        const std::string reject = dist::validateStrategy(
            model, server, global_batch, strategy, pipeline);
        if (!reject.empty()) {
            if (choice != "all")
                fatal(std::string(dist::parallelismName(strategy)) +
                      ": " + reject);
            table.addRow({dist::parallelismName(strategy), "-", "-",
                          reject});
            continue;
        }

        dist::DistributedResult result;
        std::string note;
        if (strategy == dist::Parallelism::Pipeline) {
            result = dist::pipelineTrainingMs(neusight, comms, server,
                                              model, global_batch,
                                              pipeline);
            if (pipeline.numMicroBatches > 1)
                note = std::to_string(pipeline.numMicroBatches) +
                       " micro-batches, " +
                       dist::pipelineScheduleName(pipeline.schedule);
        } else {
            result = dist::distributedTrainingMs(neusight, comms, server,
                                                 model, global_batch,
                                                 strategy);
        }
        table.addRow({dist::parallelismName(strategy),
                      result.oom ? "-" : TextTable::num(result.latencyMs, 1),
                      result.oom
                          ? "-"
                          : TextTable::num(result.commBytes / 1e9, 2),
                      result.oom ? "out of memory" : note});
    }
    table.print();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
