/**
 * @file
 * neusight-distributed: forecast the training-iteration latency of a
 * model distributed over a multi-GPU server (Section 5.1) under data,
 * tensor, or pipeline parallelism — single-axis side by side, one
 * composed TP x PP x DP strategy, or a full strategy sweep.
 *
 *   neusight-distributed --model GPT2-Large --gpu H100 --num-gpus 4
 *   neusight-distributed --model GPT3-XL --strategy tensor \
 *                        --global-batch 16
 *   neusight-distributed --model GPT3-2.7B --gpu A100-40GB \
 *                        --global-batch 16 --tp 2 --dp 2 --recompute
 *   neusight-distributed --model GPT3-2.7B --gpu A100-40GB \
 *                        --global-batch 16 --sweep --sweep-json plan.json
 */

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "api/engine.hpp"
#include "common/argparse.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "dist/parallel.hpp"
#include "graph/model_io.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "tool_common.hpp"

namespace {

using namespace neusight;

/** Exit-time observability dumps (--metrics-json / --trace-out). */
void
dumpObservability(const api::ForecastEngine &engine,
                  const std::string &metrics_path,
                  const std::string &trace_path)
{
    if (!metrics_path.empty()) {
        engine.metrics()->writeJson(metrics_path);
        std::fprintf(stderr,
                     "neusight-distributed: wrote metrics snapshot to "
                     "%s\n",
                     metrics_path.c_str());
    }
    if (!trace_path.empty()) {
        const size_t events =
            obs::Tracer::global().writeChromeTrace(trace_path);
        std::fprintf(stderr,
                     "neusight-distributed: wrote %zu trace events to "
                     "%s\n",
                     events, trace_path.c_str());
    }
}

common::Json
sweepEntryJson(int rank, const dist::SweepEntry &entry)
{
    common::Json row;
    row.set("rank", rank);
    row.set("tp", entry.config.tpDegree);
    row.set("pp", entry.config.ppDegree);
    row.set("dp", entry.config.dpDegree);
    row.set("micro_batches", entry.config.numMicroBatches);
    row.set("schedule",
            dist::pipelineScheduleName(entry.config.schedule));
    row.set("engine", dist::sweepEngineName(entry.engine));
    row.set("recompute", entry.config.recomputeActivations);
    row.set("latency_ms", entry.result.latencyMs);
    row.set("bubble_ms", entry.result.bubbleMs);
    row.set("exposed_ddp_ms", entry.result.exposedDdpMs);
    row.set("recompute_ms", entry.result.recomputeMs);
    row.set("memory_gb_per_gpu", entry.result.memoryBytes / 1e9);
    row.set("comm_gb", entry.result.commBytes / 1e9);
    return row;
}

/** The --sweep mode: ranked strategy search with optional JSON report. */
int
runSweep(const graph::LatencyPredictor &predictor,
         const dist::CollectiveModel &comms,
         const dist::ServerConfig &server, const graph::ModelConfig &model,
         uint64_t global_batch, const dist::SweepOptions &options,
         int top, const std::string &json_path)
{
    dist::SweepStats stats;
    const auto entries = dist::sweepStrategies(predictor, comms, server,
                                               model, global_batch,
                                               options, &stats);
    if (entries.empty())
        fatal("no runnable strategy found: every (tp, pp, dp) "
              "factorization failed validation or the memory screen");

    TextTable table(
        model.name + " strategy sweep on " +
            std::to_string(server.numGpus) + "x " + server.gpuName +
            " (global batch " + std::to_string(global_batch) + ", " +
            std::to_string(entries.size()) + " runnable strategies)",
        {"rank", "strategy", "micro", "schedule", "recompute",
         "predicted (ms)", "mem GB/GPU", "comm GB"});
    const size_t shown =
        top > 0 ? std::min<size_t>(entries.size(),
                                   static_cast<size_t>(top))
                : entries.size();
    for (size_t i = 0; i < shown; ++i) {
        const auto &e = entries[i];
        table.addRow({std::to_string(i + 1), e.config.describe(),
                      std::to_string(e.config.numMicroBatches),
                      e.config.ppDegree > 1
                          ? dist::pipelineScheduleName(e.config.schedule)
                          : "-",
                      e.config.recomputeActivations ? "yes" : "no",
                      TextTable::num(e.result.latencyMs, 1),
                      TextTable::num(e.result.memoryBytes / 1e9, 1),
                      TextTable::num(e.result.commBytes / 1e9, 2)});
    }
    table.print();
    std::printf("\nsweep: %zu points priced across %zu factorizations; "
                "%zu points pruned by the bound (%zu whole "
                "factorizations, %zu micro rows); stage-price memo "
                "%llu hits / %llu misses\n",
                stats.evaluatedPoints, stats.factorizations,
                stats.skippedPoints, stats.prunedFactorizations,
                stats.prunedMicroRows,
                static_cast<unsigned long long>(stats.stagePriceHits),
                static_cast<unsigned long long>(stats.stagePriceMisses));

    // Winner vs the best single-axis plan: the sweep's value statement.
    const dist::SweepEntry &winner = entries.front();
    const dist::SweepEntry *best_single =
        dist::bestSingleAxisEntry(entries);
    if (winner.config.activeAxes() >= 2 && best_single != nullptr)
        std::printf("\nBest hybrid %s is %.1fx faster than the best "
                    "single-axis plan (%s, %.1f ms).\n",
                    winner.config.describe().c_str(),
                    best_single->result.latencyMs /
                        winner.result.latencyMs,
                    best_single->config.describe().c_str(),
                    best_single->result.latencyMs);

    if (!options.exhaustive && stats.skippedPoints > 0 &&
        (top <= 0 || !json_path.empty()))
        inform("the bound pruned " +
               std::to_string(stats.skippedPoints) +
               " provably-slower points; pass --exhaustive for the "
               "complete ranked space");

    if (!json_path.empty()) {
        common::Json report;
        report.set("model", model.name);
        report.set("gpu", server.gpuName);
        report.set("num_gpus", server.numGpus);
        report.set("global_batch", static_cast<uint64_t>(global_batch));
        report.set("exhaustive", options.exhaustive);
        report.set("pruned_points",
                   static_cast<uint64_t>(stats.skippedPoints));
        common::Json::Array rows;
        for (size_t i = 0; i < entries.size(); ++i)
            rows.push_back(
                sweepEntryJson(static_cast<int>(i + 1), entries[i]));
        report.set("strategies", common::Json(std::move(rows)));
        std::ofstream out(json_path);
        if (!out)
            fatal("cannot write " + json_path);
        out << report.dump() << "\n";
        inform("wrote " + std::to_string(entries.size()) +
               " ranked strategies to " + json_path);
    }
    return 0;
}

int
run(int argc, const char *const *argv)
{
    common::ArgParser args(
        "neusight-distributed",
        "forecast distributed training latency on a multi-GPU server");
    args.addString("model", "GPT2-Large",
                   "Table-5 name or model JSON path");
    args.addString("gpu", "H100", "GPU name or spec JSON path");
    args.addString("gpu-json", "",
                   "path to a GPU spec JSON file (overrides --gpu; "
                   "forecast a hypothetical GPU from its public numbers)");
    args.addInt("num-gpus", 4, "GPUs in the server");
    args.addInt("global-batch", 4, "global batch size");
    args.addString("strategy", "all", "data | tensor | pipeline | all");
    args.addInt("micro-batches", 1,
                "pipeline micro-batches per iteration");
    args.addString("schedule", "gpipe",
                   "pipeline schedule: gpipe | 1f1b | interleaved | "
                   "zero-bubble (zero-bubble implies --simulate)");
    args.addInt("tp", 0, "tensor-parallel degree of a hybrid forecast "
                         "(with --pp/--dp; unset degrees default to 1)");
    args.addInt("pp", 0, "pipeline-parallel degree of a hybrid forecast");
    args.addInt("dp", 0, "data-parallel degree of a hybrid forecast");
    args.addFlag("recompute", "recompute activations in the backward "
                              "pass (trades FLOPs for stash memory)");
    args.addInt("virtual-stages", 2,
                "model chunks per GPU for the interleaved schedule");
    args.addFlag("simulate",
                 "price the forecast on the discrete-event cluster "
                 "simulator instead of the closed form (defaults to a "
                 "pure pipeline over every GPU when no --tp/--pp/--dp "
                 "is given)");
    args.addFlag("zero-bubble",
                 "use the zero-bubble schedule (backward split into "
                 "input- and weight-gradient passes); simulator-only, "
                 "implies --simulate");
    args.addDouble("jitter", 0.0,
                   "per-task compute jitter fraction for --simulate "
                   "(deterministic given --seed; implies --simulate)");
    args.addInt("seed", 0, "seed of the --jitter stream");
    args.addFlag("sweep", "search every (tp, pp, dp, micro-batch, "
                          "schedule, recompute) combination and rank the "
                          "runnable ones by forecast iteration time");
    args.addFlag("exhaustive",
                 "with --sweep: evaluate every runnable point instead "
                 "of branch-and-bound pruning (same winner and top "
                 "ranks, audits the full space)");
    args.addInt("sweep-threads", 0,
                "with --sweep: worker threads pricing sweep points "
                "(0 = one per hardware thread)");
    args.addInt("top", 10, "sweep rows to print (0 = all surviving)");
    args.addString("engine", "closed_form",
                   "with --sweep: pricing engine, closed_form | sim "
                   "(sim prices every point on the event simulator and "
                   "adds zero-bubble candidates to the grid)");
    args.addString("sweep-json", "",
                   "also write the ranked sweep as JSON (every runnable "
                   "point with --exhaustive; otherwise the prune "
                   "survivors, exact through the top keepTop ranks)");
    args.addDouble("link-gbps", 0.0,
                   "peak GPU-to-GPU bandwidth GB/s (0 = GPU spec value)");
    args.addString("reference-system", "A100-NVLink",
                   "in-hand server used to calibrate link utilization");
    args.addDouble("reference-link-gbps", 600.0,
                   "peak link bandwidth of the reference system");
    args.addString("predictor", "neusight_nvidia.bin",
                   "trained predictor cache path");
    args.addString("precision", "f64",
                   "NeuSight MLP inference lane: f64 (bit-exact "
                   "reference) or f32 (SIMD single-precision)");
    args.addString("metrics-json", "",
                   "write the metrics-registry snapshot (sweep.* "
                   "counters, cache counters) to this path on exit");
    args.addString("trace-out", "",
                   "enable span tracing and write Chrome trace-event "
                   "JSON to this path on exit");
    if (!args.parse(argc, argv))
        return 0;

    if (!args.getString("trace-out").empty())
        obs::Tracer::global().setEnabled(true);

    const graph::ModelConfig model =
        graph::resolveModel(args.getString("model"));
    // --gpu already accepts a spec path; --gpu-json forces file
    // resolution (a hypothetical GPU can shadow a database name).
    const gpusim::GpuSpec gpu = api::ForecastEngine::resolveGpu(
        args.getString("gpu"), args.getString("gpu-json"));

    dist::ServerConfig server;
    server.systemName = gpu.name + "-server";
    // Pin the resolved spec so JSON-defined GPUs work in the library's
    // distributed forecasts (no findGpu round-trip on the name).
    server.setGpu(gpu);
    server.numGpus = static_cast<int>(args.getInt("num-gpus"));
    server.linkGBps = args.getDouble("link-gbps");
    if (server.numGpus < 2)
        fatal("--num-gpus must be at least 2");

    std::vector<dist::Parallelism> strategies;
    const std::string choice = args.getString("strategy");
    if (choice == "data" || choice == "all")
        strategies.push_back(dist::Parallelism::Data);
    if (choice == "tensor" || choice == "all")
        strategies.push_back(dist::Parallelism::Tensor);
    if (choice == "pipeline" || choice == "all")
        strategies.push_back(dist::Parallelism::Pipeline);
    if (strategies.empty())
        fatal("--strategy must be data, tensor, pipeline, or all");

    dist::PipelineConfig pipeline;
    pipeline.numMicroBatches =
        static_cast<int>(args.getInt("micro-batches"));
    if (pipeline.numMicroBatches < 1)
        fatal("--micro-batches must be at least 1");
    const std::string schedule = args.getString("schedule");
    if (schedule == "gpipe")
        pipeline.schedule = dist::PipelineSchedule::GPipe;
    else if (schedule == "1f1b")
        pipeline.schedule = dist::PipelineSchedule::OneFOneB;
    else if (schedule == "interleaved")
        pipeline.schedule = dist::PipelineSchedule::Interleaved1F1B;
    else if (schedule == "zero-bubble")
        pipeline.schedule = dist::PipelineSchedule::ZeroBubble;
    else
        fatal("--schedule must be gpipe, 1f1b, interleaved, or "
              "zero-bubble");
    if (args.getFlag("zero-bubble"))
        pipeline.schedule = dist::PipelineSchedule::ZeroBubble;
    if (args.getDouble("jitter") < 0.0)
        fatal("--jitter must be non-negative");
    // Anything only the event engine can price routes to it implicitly.
    const bool simulate =
        args.getFlag("simulate") || args.getDouble("jitter") > 0.0 ||
        pipeline.schedule == dist::PipelineSchedule::ZeroBubble;
    sim::SimOptions sim_options;
    sim_options.jitterFraction = args.getDouble("jitter");
    sim_options.seed = static_cast<uint64_t>(args.getInt("seed"));

    if (args.getInt("global-batch") < 1)
        fatal("--global-batch must be at least 1");
    const uint64_t global_batch =
        static_cast<uint64_t>(args.getInt("global-batch"));
    // The engine wires the predictor, the kernel-prediction cache
    // (sweeps forecast hundreds of graph variants sharing almost all
    // kernel shapes — the cache turns the repeats into hash lookups),
    // and the calibrated collective model in one place.
    const api::ForecastEngine engine(
        api::EngineConfig()
            .predictor(args.getString("predictor"))
            .precision(args.getString("precision"))
            .collectives(args.getString("reference-system"),
                         args.getDouble("reference-link-gbps")));
    const graph::LatencyPredictor &neusight = engine.backend();
    const dist::CollectiveModel &comms = engine.collectives();
    const std::string metrics_path = args.getString("metrics-json");
    const std::string trace_path = args.getString("trace-out");

    if (args.getFlag("sweep")) {
        dist::SweepOptions options;
        options.metrics = engine.metrics();
        options.tryRecompute = true;
        options.virtualStagesPerGpu =
            static_cast<int>(args.getInt("virtual-stages"));
        options.exhaustive = args.getFlag("exhaustive");
        options.threads =
            static_cast<int>(args.getInt("sweep-threads"));
        // Keep at least the printed prefix exact under pruning.
        if (args.getInt("top") > 0)
            options.keepTop = std::max(
                options.keepTop, static_cast<int>(args.getInt("top")));
        const std::string engine_choice = args.getString("engine");
        if (engine_choice == "sim" || simulate)
            options = sim::simulatorSweepOptions(neusight, comms, server,
                                                 model, global_batch,
                                                 options, sim_options);
        else if (engine_choice != "closed_form")
            fatal("--engine must be closed_form or sim");
        const int rc =
            runSweep(neusight, comms, server, model, global_batch,
                     options, static_cast<int>(args.getInt("top")),
                     args.getString("sweep-json"));
        dumpObservability(engine, metrics_path, trace_path);
        return rc;
    }

    // A composed TP x PP x DP forecast: any of --tp/--pp/--dp selects
    // the hybrid path; unset degrees default to 1. --simulate without
    // degrees defaults to a pure pipeline over every GPU (the setting
    // where the simulator-only schedules and perturbations matter).
    if (args.given("tp") || args.given("pp") || args.given("dp") ||
        simulate) {
        const bool degrees_given =
            args.given("tp") || args.given("pp") || args.given("dp");
        dist::HybridConfig hybrid;
        hybrid.tpDegree =
            args.given("tp") ? static_cast<int>(args.getInt("tp")) : 1;
        hybrid.ppDegree = args.given("pp")
                              ? static_cast<int>(args.getInt("pp"))
                              : (degrees_given ? 1 : server.numGpus);
        hybrid.dpDegree =
            args.given("dp") ? static_cast<int>(args.getInt("dp")) : 1;
        hybrid.numMicroBatches = pipeline.numMicroBatches;
        hybrid.schedule = pipeline.schedule;
        hybrid.virtualStagesPerGpu =
            static_cast<int>(args.getInt("virtual-stages"));
        hybrid.recomputeActivations = args.getFlag("recompute");
        const std::string reject =
            dist::validateHybrid(model, server, global_batch, hybrid);
        if (!reject.empty())
            fatal("hybrid strategy: " + reject);
        dist::HybridResult result;
        uint64_t sim_events = 0;
        uint64_t sim_tasks = 0;
        if (simulate) {
            sim_options.emitTrace = !trace_path.empty();
            const sim::SimResult simulated = sim::simulateHybrid(
                neusight, comms, server, model, global_batch, hybrid,
                sim_options);
            result = simulated.hybrid;
            sim_events = simulated.events;
            sim_tasks = simulated.tasks;
        } else {
            result = dist::hybridTrainingMs(neusight, comms, server,
                                            model, global_batch, hybrid);
        }
        TextTable table(model.name + " hybrid training forecast on " +
                            std::to_string(server.numGpus) + "x " +
                            gpu.name + " (global batch " +
                            std::to_string(global_batch) +
                            (simulate ? ", event simulator)" : ")"),
                        {"metric", "value"});
        table.addRow({"strategy", hybrid.describe()});
        table.addRow({"micro-batches",
                      std::to_string(hybrid.numMicroBatches)});
        table.addRow({"schedule",
                      hybrid.ppDegree > 1
                          ? dist::pipelineScheduleName(hybrid.schedule)
                          : "-"});
        table.addRow({"recompute",
                      hybrid.recomputeActivations ? "yes" : "no"});
        if (result.oom) {
            table.addRow({"predicted", "out of memory"});
            table.addRow({"mem GB/GPU",
                          TextTable::num(result.memoryBytes / 1e9, 1)});
            table.print();
            dumpObservability(engine, metrics_path, trace_path);
            return 1;
        }
        table.addRow({"predicted (ms)",
                      TextTable::num(result.latencyMs, 1)});
        table.addRow({"pipeline bubble (ms)",
                      TextTable::num(result.bubbleMs, 1)});
        table.addRow({"exposed DDP comm (ms)",
                      TextTable::num(result.exposedDdpMs, 1)});
        table.addRow({"recompute overhead (ms)",
                      TextTable::num(result.recomputeMs, 1)});
        table.addRow({"mem GB/GPU",
                      TextTable::num(result.memoryBytes / 1e9, 1)});
        table.addRow({"comm GB",
                      TextTable::num(result.commBytes / 1e9, 2)});
        if (simulate) {
            table.addRow({"sim events",
                          std::to_string(sim_events)});
            table.addRow({"sim tasks", std::to_string(sim_tasks)});
            if (sim_options.jitterFraction > 0.0)
                table.addRow(
                    {"jitter",
                     TextTable::num(sim_options.jitterFraction, 2) +
                         " (seed " +
                         std::to_string(sim_options.seed) + ")"});
        }
        table.print();
        dumpObservability(engine, metrics_path, trace_path);
        return 0;
    }

    TextTable table(model.name + " training on " +
                        std::to_string(server.numGpus) + "x " + gpu.name +
                        " (global batch " +
                        std::to_string(args.getInt("global-batch")) + ")",
                    {"strategy", "predicted (ms)", "comm GB", "note"});
    // Pre-validate each strategy's preconditions so a bad combination
    // reports cleanly instead of reaching the library's abort/throw
    // paths: skip the row under --strategy all, reject an explicit ask.
    for (dist::Parallelism strategy : strategies) {
        const std::string reject = dist::validateStrategy(
            model, server, global_batch, strategy, pipeline);
        if (!reject.empty()) {
            if (choice != "all")
                fatal(std::string(dist::parallelismName(strategy)) +
                      ": " + reject);
            table.addRow({dist::parallelismName(strategy), "-", "-",
                          reject});
            continue;
        }

        dist::DistributedResult result;
        std::string note;
        if (strategy == dist::Parallelism::Pipeline) {
            result = dist::pipelineTrainingMs(neusight, comms, server,
                                              model, global_batch,
                                              pipeline);
            if (pipeline.numMicroBatches > 1)
                note = std::to_string(pipeline.numMicroBatches) +
                       " micro-batches, " +
                       dist::pipelineScheduleName(pipeline.schedule);
        } else {
            result = dist::distributedTrainingMs(neusight, comms, server,
                                                 model, global_batch,
                                                 strategy);
        }
        table.addRow({dist::parallelismName(strategy),
                      result.oom ? "-" : TextTable::num(result.latencyMs, 1),
                      result.oom
                          ? "-"
                          : TextTable::num(result.commBytes / 1e9, 2),
                      result.oom ? "out of memory" : note});
    }
    table.print();
    dumpObservability(engine, metrics_path, trace_path);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    tools::toolInit();
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
