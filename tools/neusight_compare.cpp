/**
 * @file
 * neusight-compare: evaluate NeuSight against the three baselines
 * (roofline, Habitat, Li et al.) on a models x GPUs grid with simulator
 * ground truth — a command-line slice of the Figure-7 study.
 *
 *   neusight-compare --models BERT-Large,GPT3-XL --gpus V100,H100
 *   neusight-compare --phase training --batch 4
 */

#include <cstdio>

#include "api/engine.hpp"
#include "common/argparse.hpp"
#include "common/table.hpp"
#include "eval/harness.hpp"
#include "graph/model_io.hpp"
#include "tool_common.hpp"

namespace {

using namespace neusight;

int
run(int argc, const char *const *argv)
{
    common::ArgParser args(
        "neusight-compare",
        "compare NeuSight and baseline predictors on a workload grid");
    args.addString("models", "BERT-Large,GPT2-Large,GPT3-XL",
                   "comma list of Table-5 names or model JSON paths");
    args.addString("gpus", "V100,A100-40GB,H100",
                   "comma list of GPU names or spec JSON paths");
    args.addInt("batch", 4, "batch size for every model");
    args.addString("phase", "inference", "inference | training");
    args.addString("predictor", "neusight_nvidia.bin",
                   "trained NeuSight cache path");
    if (!args.parse(argc, argv))
        return 0;

    const bool training = args.getString("phase") == "training";
    if (!training && args.getString("phase") != "inference")
        fatal("--phase must be 'inference' or 'training'");

    std::vector<eval::WorkloadCase> cases;
    for (const std::string &name : tools::splitList(args.getString("models"))) {
        eval::WorkloadCase c;
        c.model = graph::resolveModel(name);
        c.batch = static_cast<uint64_t>(args.getInt("batch"));
        c.training = training;
        cases.push_back(c);
    }
    const std::vector<gpusim::GpuSpec> gpus =
        tools::resolveGpuList(args.getString("gpus"));

    // Every predictor of the study comes from the engine's registry
    // (Habitat and Li train lazily on a shared fresh corpus, as the
    // paper retrains them per study too). Caching is disabled so the
    // harness sees the raw predictors under their display names.
    const api::ForecastEngine engine(api::EngineConfig()
                                         .predictor(args.getString("predictor"))
                                         .cache(0)
                                         .graphCache(0));
    const auto results = eval::evaluateCases(
        cases, gpus,
        {&engine.backend("neusight"), &engine.backend("roofline"),
         &engine.backend("habitat"), &engine.backend("li")});

    TextTable table("Prediction error by cell (" +
                        args.getString("phase") + ", batch " +
                        std::to_string(args.getInt("batch")) + ")",
                    {"model", "gpu", "measured (ms)", "NeuSight",
                     "Roofline", "Habitat", "Li et al."});
    for (const auto &r : results) {
        std::vector<std::string> row = {r.modelName, r.gpuName,
                                        TextTable::num(r.measuredMs, 2)};
        for (const char *name :
             {"NeuSight", "Roofline", "Habitat", "Li et al."}) {
            const double pred = r.predictedMs.at(name);
            const double err =
                100.0 * std::abs(pred - r.measuredMs) / r.measuredMs;
            row.push_back(TextTable::pct(err));
        }
        table.addRow(std::move(row));
    }
    table.print();

    const auto err = eval::endToEndError(results);
    std::printf("\nMean absolute percentage error over %zu cells:\n",
                results.size());
    for (const auto &[name, value] : err)
        std::printf("  %-10s %6.1f%%\n", name.c_str(), value);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    tools::toolInit();
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
